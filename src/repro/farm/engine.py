"""The :class:`Farm` facade: cache + pool + observability.

``Farm.run(jobs)`` is the one call every sweep-shaped workflow goes
through: it fingerprints each job, serves hits from the content-addressed
cache, shards the misses across the worker pool, stores fresh results, and
returns :class:`~repro.farm.job.JobResult` records in submission order with
full provenance (worker id, wall time, cache hit/miss, attempt count).

Observability rides along on :mod:`repro.obs`: the farm keeps a
:class:`~repro.obs.registry.MetricRegistry` under the ``farm/*`` namespace
(jobs, hits/misses, retries, timeouts, crashes, per-job wall-time
histogram) and a :class:`~repro.sim.trace.Tracer` that records one span per
job — track ``farm/<worker>``, one microsecond of trace time per real
microsecond — exportable with the same Chrome/Perfetto exporter builds use.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.farm.cache import ResultCache
from repro.farm.job import Job, JobResult
from repro.farm.pool import SerialPool, WorkerPool, multiprocessing_available
from repro.obs.registry import MetricRegistry
from repro.sim.trace import Tracer

_WORKERS_ENV = "REPRO_FARM_WORKERS"
_CACHE_DIR_ENV = "REPRO_FARM_CACHE_DIR"

#: Wall-time histogram buckets: 1ms .. ~1hr in powers of four (seconds).
_WALL_BUCKETS = tuple(0.001 * 4**i for i in range(11))


class FarmJobError(RuntimeError):
    """Raised by :meth:`Farm.map` when any job fails."""

    def __init__(self, failures: Sequence[JobResult]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} farm job(s) failed:"]
        for res in self.failures:
            lines.append(f"  {res.label}: {res.error}")
        super().__init__("\n".join(lines))


def default_workers() -> int:
    """Worker count: ``REPRO_FARM_WORKERS`` env, else min(4, cpu_count)."""
    env = os.environ.get(_WORKERS_ENV)
    if env:
        try:
            return max(int(env), 1)
        except ValueError:
            pass
    return min(4, os.cpu_count() or 1)


def default_cache_dir() -> str:
    """Cache root: ``REPRO_FARM_CACHE_DIR`` env, else ``~/.cache/repro-farm``."""
    env = os.environ.get(_CACHE_DIR_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-farm")


class Farm:
    """Sharded job execution with content-addressed memoisation.

    ``n_workers``
        Pool width; ``None`` reads ``REPRO_FARM_WORKERS`` (default
        ``min(4, cpu_count)``).  ``1`` — or an interpreter where
        multiprocessing is unusable — selects the in-process serial pool.
    ``cache``
        ``True`` opens (creating if needed) the content-addressed cache at
        ``cache_dir`` (default ``~/.cache/repro-farm`` or the
        ``REPRO_FARM_CACHE_DIR`` env); ``False`` disables memoisation.  An
        existing :class:`ResultCache` may also be passed directly.
    ``registry`` / ``tracer``
        Adopt an existing obs registry/tracer (e.g. a build's) instead of
        farm-private ones; metrics land under ``farm/*`` either way.
    ``checkpoint_dir``
        Where resumable jobs (``Job(checkpoint_every=...)``) keep their
        checkpoint files; defaults to ``<cache root>/checkpoints``.  Paths
        are content-addressed by job fingerprint *and* snapshot format
        version, so a host crash mid-sweep resumes from the right file on
        the next run and a format bump never feeds stale snapshots.
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        cache: Any = True,
        cache_dir: Optional[str] = None,
        default_timeout_s: Optional[float] = 600.0,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
        checkpoint_dir: Optional[str] = None,
    ) -> None:
        self.n_workers = default_workers() if n_workers is None else max(int(n_workers), 1)
        if isinstance(cache, ResultCache):
            self.cache: Optional[ResultCache] = cache
        elif cache:
            self.cache = ResultCache(cache_dir or default_cache_dir())
        else:
            self.cache = None
        self.checkpoint_dir = checkpoint_dir or os.path.join(
            cache_dir or default_cache_dir(), "checkpoints"
        )
        if self.n_workers > 1 and multiprocessing_available():
            self.pool: Any = WorkerPool(
                self.n_workers, default_timeout_s, max_attempts, backoff_base_s
            )
        else:
            self.pool = SerialPool(default_timeout_s, max_attempts, backoff_base_s)

        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        scope = self.registry.scope("farm")
        self._m_submitted = scope.counter("jobs_submitted")
        self._m_completed = scope.counter("jobs_completed")
        self._m_failed = scope.counter("jobs_failed")
        self._m_hits = scope.counter("cache/hits")
        self._m_misses = scope.counter("cache/misses")
        self._m_retries = scope.counter("retries")
        self._m_timeouts = scope.counter("timeouts")
        self._m_crashes = scope.counter("crashes")
        self._m_inline = scope.counter("inline_fallbacks")
        self._m_resumes = scope.counter("checkpoint_resumes")
        self._m_workers = scope.gauge("workers")
        self._m_workers.set(self.pool.n_workers)
        self._m_wall = scope.histogram("job_wall_seconds", buckets=_WALL_BUCKETS)
        self._m_saved = scope.gauge("cache/seconds_saved")
        self._epoch = time.perf_counter()

    # ----------------------------------------------------------- execution
    def run(self, jobs: Sequence[Job]) -> List[JobResult]:
        """Execute ``jobs`` (cache first, then the pool); provenance included.

        Results come back in submission order.  Failures are *data* here —
        ``ok=False`` with the error string — so one bad point never aborts a
        sweep; use :meth:`map` for raise-on-failure semantics.
        """
        jobs = list(jobs)
        self._m_submitted.inc(len(jobs))
        results: Dict[int, JobResult] = {}

        # 1. Serve whatever the cache already knows.
        misses: List[int] = []
        for i, job in enumerate(jobs):
            fp = job.fingerprint
            if self.cache is not None and job.cache:
                hit, value, meta = self.cache.get(fp)
                if hit:
                    results[i] = JobResult(
                        job=job,
                        value=value,
                        ok=True,
                        worker="cache",
                        wall_seconds=float(meta.get("wall_seconds", 0.0)),
                        attempts=0,
                        cache_hit=True,
                        fingerprint=fp,
                    )
                    continue
            misses.append(i)

        # 2. Shard the misses across the pool.  Resumable jobs get their
        #    content-addressed checkpoint path assigned here so a retry —
        #    or a whole re-run after a host crash — finds the same file.
        if misses:
            from repro.snapshot.store import job_checkpoint_path

            for i in misses:
                job = jobs[i]
                if job.checkpoint_every and not job.checkpoint_path:
                    job.checkpoint_path = job_checkpoint_path(
                        self.checkpoint_dir, job.fingerprint
                    )
            outcomes = self.pool.run([jobs[i] for i in misses])
            for i, outcome in zip(misses, outcomes):
                job = jobs[i]
                results[i] = JobResult(
                    job=job,
                    value=outcome.value,
                    ok=outcome.ok,
                    error=outcome.error,
                    worker=outcome.worker,
                    wall_seconds=outcome.wall_seconds,
                    attempts=outcome.attempts,
                    cache_hit=False,
                    timed_out=outcome.timed_out,
                    crashes=outcome.crashes,
                    fingerprint=job.fingerprint,
                    resumed_from_checkpoint=outcome.resumed_from_checkpoint,
                )
                if outcome.ok and self.cache is not None and job.cache:
                    self.cache.put(
                        job.fingerprint,
                        outcome.value,
                        meta={
                            "label": job.label,
                            "worker": outcome.worker,
                            "wall_seconds": outcome.wall_seconds,
                            "attempts": outcome.attempts,
                        },
                    )

        ordered = [results[i] for i in range(len(jobs))]
        self._account(ordered)
        return ordered

    def map(self, jobs: Sequence[Job]) -> List[Any]:
        """Like :meth:`run` but returns plain values, raising on any failure."""
        results = self.run(jobs)
        failures = [r for r in results if not r.ok]
        if failures:
            raise FarmJobError(failures)
        return [r.value for r in results]

    # -------------------------------------------------------- observability
    def _account(self, results: Sequence[JobResult]) -> None:
        now_us = int((time.perf_counter() - self._epoch) * 1e6)
        for res in results:
            if res.ok:
                self._m_completed.inc()
            else:
                self._m_failed.inc()
            if res.cache_hit:
                self._m_hits.inc()
                self._m_saved.add(res.wall_seconds)
            else:
                self._m_misses.inc()
                self._m_wall.observe(res.wall_seconds)
            if res.attempts > 1:
                self._m_retries.inc(res.attempts - 1)
            if res.timed_out:
                self._m_timeouts.inc()
            if res.crashes:
                self._m_crashes.inc(res.crashes)
            if res.worker == "inline":
                self._m_inline.inc()
            if res.resumed_from_checkpoint:
                self._m_resumes.inc()
            # One span per job on the worker's track.  Cache hits render as
            # zero-length markers at the lookup instant.
            dur_us = 0 if res.cache_hit else int(res.wall_seconds * 1e6)
            sid = self.tracer.begin_span(
                max(now_us - dur_us, 0),
                f"farm/{res.worker}",
                f"job:{res.label}",
                fingerprint=res.fingerprint[:12],
                cache_hit=res.cache_hit,
                attempts=res.attempts,
                ok=res.ok,
            )
            self.tracer.end_span(sid, now_us)

    def metrics(self, prefix: Optional[str] = "farm") -> Dict[str, Any]:
        return self.registry.dump(prefix)

    def metrics_report(self, prefix: Optional[str] = "farm") -> str:
        return self.registry.render_report(prefix)

    def export_metrics(self, path: str, prefix: Optional[str] = "farm"):
        from repro.obs.export import export_metrics

        return export_metrics(path, self.registry, prefix)

    def chrome_trace(self) -> Dict[str, Any]:
        from repro.obs.export import chrome_trace

        return chrome_trace(self.tracer)

    def export_chrome_trace(self, path: str) -> Dict[str, Any]:
        from repro.obs.export import export_chrome_trace

        return export_chrome_trace(path, self.tracer)

    def stats(self) -> Dict[str, Any]:
        """One JSON-able snapshot: pool shape, counters, cache state."""
        out: Dict[str, Any] = {
            "workers": self.pool.n_workers,
            "pool": type(self.pool).__name__,
            "jobs_submitted": int(self._m_submitted),
            "jobs_completed": int(self._m_completed),
            "jobs_failed": int(self._m_failed),
            "cache_hits": int(self._m_hits),
            "cache_misses": int(self._m_misses),
            "retries": int(self._m_retries),
            "timeouts": int(self._m_timeouts),
            "crashes": int(self._m_crashes),
            "inline_fallbacks": int(self._m_inline),
        }
        served = int(self._m_hits) + int(self._m_misses)
        out["cache_hit_rate"] = int(self._m_hits) / served if served else 0.0
        out["cache"] = self.cache.stats() if self.cache is not None else None
        return out

    # --------------------------------------------------------- constructors
    @classmethod
    def serial(cls, cache: Any = False, **kwargs: Any) -> "Farm":
        """An in-process farm (no worker processes, cache off by default).

        This is the reference executor: sweeps routed through it are
        bit-identical to calling the underlying functions directly.
        """
        return cls(n_workers=1, cache=cache, **kwargs)
