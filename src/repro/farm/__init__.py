"""``repro.farm`` — sharded build/sweep execution with a result cache.

The paper's workflow is *composition at scale*: sweep ``n_cores`` per System
until the feasibility model binds, then repeat for every platform and
ablation.  Each design point is a pure function of (configuration,
platform, build mode), so the farm treats evaluation as a job graph:

* :mod:`repro.farm.fingerprint` — deterministic content fingerprints for
  jobs (canonical serialisation of the payload plus a code-version salt);
* :mod:`repro.farm.cache` — an on-disk content-addressed store keyed by
  those fingerprints;
* :mod:`repro.farm.pool` — a multiprocess worker pool with per-job
  timeouts, bounded retry-with-backoff on worker crash, and graceful
  degradation to in-process serial execution;
* :mod:`repro.farm.engine` — the :class:`Farm` facade that glues cache and
  pool together and registers provenance metrics/spans with
  :mod:`repro.obs`.
"""

from repro.farm.cache import ResultCache
from repro.farm.engine import Farm, FarmJobError
from repro.farm.fingerprint import canonical, code_salt, job_fingerprint
from repro.farm.job import Job, JobResult
from repro.farm.pool import (
    PoolStats,
    SerialPool,
    WorkerPool,
    bind_pool_metrics,
    current_attempt,
)

__all__ = [
    "Farm",
    "FarmJobError",
    "Job",
    "JobResult",
    "PoolStats",
    "ResultCache",
    "SerialPool",
    "WorkerPool",
    "bind_pool_metrics",
    "canonical",
    "code_salt",
    "current_attempt",
    "job_fingerprint",
]
