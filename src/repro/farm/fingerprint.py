"""Deterministic job fingerprints — the farm's cache keys.

A job is a pure function of its payload: the callable, its arguments, and
the version of the code that will run it.  The fingerprint is a SHA-256
over a *canonical* serialisation of all three, so two jobs collide exactly
when they would compute the same result:

* dataclasses (configs, platforms, tunings) serialise field-by-field under
  their qualified type name — field order and dict ordering never leak in;
* callables serialise as ``module.qualname`` plus a hash of their compiled
  code and constants, so a lambda's fingerprint changes when its body does
  (two sweeps differing only in an inline factory don't share entries);
* every fingerprint is salted with a digest of the ``repro`` source tree
  (or the ``REPRO_FARM_SALT`` environment override), so editing the models
  invalidates the whole cache instead of serving stale results.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
from functools import lru_cache
from typing import Any, Dict, Optional

_SALT_ENV = "REPRO_FARM_SALT"


def _qualified_name(obj: Any) -> str:
    module = getattr(obj, "__module__", "") or ""
    qual = getattr(obj, "__qualname__", None) or getattr(obj, "__name__", repr(obj))
    return f"{module}.{qual}"


def _code_digest(fn: Any) -> Optional[str]:
    """Digest of a function's compiled body, if it has one."""
    code = getattr(fn, "__code__", None)
    if code is None:
        return None
    h = hashlib.sha256()
    h.update(code.co_code)
    h.update(repr(code.co_consts).encode())
    h.update(repr(code.co_names).encode())
    # Default arguments are part of behaviour too.
    defaults = getattr(fn, "__defaults__", None)
    if defaults:
        h.update(repr([canonical(d) for d in defaults]).encode())
    return h.hexdigest()


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-able structure.

    The output is deterministic across processes and runs: dict keys are
    sorted, sets are ordered, dataclasses and enums carry their qualified
    type names, and callables reduce to name + code digest.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() round-trips floats exactly and avoids JSON formatting drift.
        return {"__float__": repr(obj)}
    if isinstance(obj, (bytes, bytearray)):
        return {"__bytes__": bytes(obj).hex()}
    if isinstance(obj, enum.Enum):
        return {"__enum__": _qualified_name(type(obj)), "value": canonical(obj.value)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": _qualified_name(type(obj)), "fields": fields}
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(repr(canonical(x)) for x in obj)}
    if isinstance(obj, dict):
        return {
            "__dict__": sorted(
                (repr(canonical(k)), canonical(v)) for k, v in obj.items()
            )
        }
    # functools.partial: canonicalise the pieces, not the object identity.
    func = getattr(obj, "func", None)
    if func is not None and hasattr(obj, "args") and hasattr(obj, "keywords"):
        return {
            "__partial__": canonical(func),
            "args": canonical(tuple(obj.args)),
            "kwargs": canonical(dict(obj.keywords or {})),
        }
    if callable(obj):
        entry: Dict[str, Any] = {"__callable__": _qualified_name(obj)}
        digest = _code_digest(obj)
        if digest is not None:
            entry["code"] = digest
        self_obj = getattr(obj, "__self__", None)
        if self_obj is not None:
            entry["self"] = canonical(self_obj)
        return entry
    # numpy scalars and other number-likes that expose .item()
    item = getattr(obj, "item", None)
    if callable(item):
        try:
            return canonical(item())
        except Exception:
            pass
    state = getattr(obj, "__dict__", None)
    if isinstance(state, dict):
        return {"__object__": _qualified_name(type(obj)), "state": canonical(state)}
    return {"__repr__": f"{_qualified_name(type(obj))}:{obj!r}"}


def _canonical_bytes(obj: Any) -> bytes:
    import json

    return json.dumps(canonical(obj), sort_keys=True, separators=(",", ":")).encode()


@lru_cache(maxsize=1)
def _source_tree_digest() -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro`` package."""
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    h = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            h.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as f:
                h.update(f.read())
    return h.hexdigest()


def code_salt() -> str:
    """The code-version component of every fingerprint.

    ``REPRO_FARM_SALT`` overrides the source-tree digest — useful in tests
    (forcing invalidation without editing files) and in deployments that
    already know their release id.
    """
    return os.environ.get(_SALT_ENV) or _source_tree_digest()


def job_fingerprint(
    fn: Any,
    args: tuple,
    kwargs: dict,
    salt: Optional[str] = None,
    partition: Any = None,
) -> str:
    """Content fingerprint of one job: callable + payload + code version.

    ``partition`` folds a sharding descriptor (e.g. a
    :class:`repro.dist.PartitionDescriptor`) into the key.  Sharded runs are
    bit-identical to single-process ones for *stable* outputs, but volatile
    harness metrics (``dist/*``) legitimately differ — so a cached result
    must not be served across different partitionings.
    """
    h = hashlib.sha256()
    h.update((salt if salt is not None else code_salt()).encode())
    h.update(b"\x00")
    h.update(_canonical_bytes(fn))
    h.update(b"\x00")
    h.update(_canonical_bytes(tuple(args)))
    h.update(b"\x00")
    h.update(_canonical_bytes(dict(kwargs)))
    if partition is not None:
        h.update(b"\x00dist\x00")
        h.update(_canonical_bytes(partition))
    return h.hexdigest()
