"""Job and result records for the farm.

A :class:`Job` names a callable (either directly, or as an importable
``"module:attr"`` string — the form worker processes can always resolve
regardless of start method) plus its payload and per-job execution policy.
A :class:`JobResult` carries the value back together with full provenance:
which worker ran it, how long it took, whether the cache served it, and
how many attempts the pool needed.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.farm.fingerprint import job_fingerprint

FnRef = Union[str, Callable[..., Any]]


def resolve_fn(ref: FnRef) -> Callable[..., Any]:
    """Resolve a job's callable: ``"pkg.mod:attr"`` strings import lazily."""
    if callable(ref):
        return ref
    module_name, _, attr_path = ref.partition(":")
    if not attr_path:
        raise ValueError(f"bad function reference {ref!r}: want 'module:attr'")
    obj: Any = importlib.import_module(module_name)
    for attr in attr_path.split("."):
        obj = getattr(obj, attr)
    if not callable(obj):
        raise TypeError(f"{ref!r} resolved to non-callable {obj!r}")
    return obj


@dataclass
class Job:
    """One unit of farm work: a callable reference plus payload and policy.

    ``fn`` may be a callable or an importable ``"module:attr"`` string; the
    string form survives any multiprocessing start method and is preferred
    for jobs defined in library code.  ``timeout_s`` / ``max_attempts``
    default to the pool's settings when ``None``.  ``cache=False`` opts a
    job out of the result cache (e.g. wall-clock measurements).

    ``checkpoint_every`` declares the job *resumable*: job code that honours
    :func:`repro.snapshot.store.job_checkpoint` checkpoints its state every
    N units to a content-addressed file the farm assigns (next to the result
    cache), and a timed-out or crashed attempt is requeued to resume from
    the last checkpoint instead of restarting — or, for timeouts without a
    checkpoint, failing outright.  ``checkpoint_path`` is normally assigned
    by the farm from the job fingerprint; set it explicitly only to pin a
    location.  Neither field enters the cache fingerprint (they change how a
    result is computed, never its value).
    """

    fn: FnRef
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""
    timeout_s: Optional[float] = None
    max_attempts: Optional[int] = None
    cache: bool = True
    partition: Any = None  # sharding descriptor folded into the cache key
    checkpoint_every: Optional[int] = None
    checkpoint_path: Optional[str] = None

    def __post_init__(self) -> None:
        self.args = tuple(self.args)
        if not self.label:
            name = self.fn if isinstance(self.fn, str) else getattr(
                self.fn, "__qualname__", repr(self.fn)
            )
            self.label = str(name).rpartition(":")[2]
        self._fingerprint: Optional[str] = None

    @classmethod
    def call(cls, fn: FnRef, *args: Any, **kwargs: Any) -> "Job":
        """Shorthand constructor: ``Job.call("mod:fn", a, b, k=1)``."""
        return cls(fn, args, kwargs)

    @property
    def fingerprint(self) -> str:
        """Content fingerprint (cache key); computed once per job."""
        if self._fingerprint is None:
            self._fingerprint = job_fingerprint(
                self.fn, self.args, self.kwargs, partition=self.partition
            )
        return self._fingerprint

    def resolve(self) -> Callable[..., Any]:
        return resolve_fn(self.fn)


@dataclass
class JobResult:
    """Outcome and provenance of one job."""

    job: Job
    value: Any = None
    ok: bool = False
    error: Optional[str] = None
    worker: str = ""  # "w<N>", "serial", "inline", or "cache"
    wall_seconds: float = 0.0  # execution time (original compute time on hits)
    attempts: int = 0
    cache_hit: bool = False
    timed_out: bool = False
    crashes: int = 0
    fingerprint: str = ""
    #: True when the successful attempt restored state from a checkpoint
    #: file written by an earlier (killed or crashed) attempt.
    resumed_from_checkpoint: bool = False

    @property
    def label(self) -> str:
        return self.job.label
