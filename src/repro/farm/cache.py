"""On-disk content-addressed result cache.

Entries are keyed by the job fingerprint (see
:mod:`repro.farm.fingerprint`): entry ``<fp>`` lives at
``<root>/<fp[:2]>/<fp[2:]>.pkl`` — the two-character fan-out keeps
directories small for large sweeps.  Each file is a pickled envelope
``{"fingerprint", "value", "meta"}`` written atomically (temp file +
``os.replace``), so concurrent farms sharing one cache directory never
observe torn entries; a corrupt or unreadable entry is treated as a miss
and deleted.

The cache never interprets values — anything picklable can be stored — and
it keeps session hit/miss counters that :class:`repro.farm.engine.Farm`
surfaces as ``farm/cache/*`` metrics.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any, Dict, Iterator, Optional, Tuple


class ResultCache:
    """Content-addressed pickle store rooted at ``root``."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(os.fspath(root))
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # -------------------------------------------------------------- layout
    def path_for(self, fingerprint: str) -> str:
        return os.path.join(self.root, fingerprint[:2], fingerprint[2:] + ".pkl")

    def entries(self) -> Iterator[str]:
        """Yield every stored fingerprint."""
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".pkl"):
                    yield shard + name[: -len(".pkl")]

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def __contains__(self, fingerprint: str) -> bool:
        return os.path.exists(self.path_for(fingerprint))

    # -------------------------------------------------------------- access
    def get(self, fingerprint: str) -> Tuple[bool, Any, Dict[str, Any]]:
        """Look up one entry: ``(hit, value, meta)``."""
        path = self.path_for(fingerprint)
        try:
            with open(path, "rb") as f:
                envelope = pickle.load(f)
            if envelope.get("fingerprint") != fingerprint:
                raise ValueError("fingerprint mismatch")
        except FileNotFoundError:
            self.misses += 1
            return False, None, {}
        except Exception:
            # Corrupt entry: drop it and recompute.
            self.invalidate(fingerprint)
            self.misses += 1
            return False, None, {}
        self.hits += 1
        return True, envelope.get("value"), dict(envelope.get("meta") or {})

    def put(self, fingerprint: str, value: Any, meta: Optional[Dict[str, Any]] = None) -> str:
        """Store ``value`` under ``fingerprint`` atomically; returns the path."""
        path = self.path_for(fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        envelope = {"fingerprint": fingerprint, "value": value, "meta": dict(meta or {})}
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(envelope, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def invalidate(self, fingerprint: str) -> bool:
        """Remove one entry; True if it existed."""
        try:
            os.unlink(self.path_for(fingerprint))
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for fp in list(self.entries()):
            removed += self.invalidate(fp)
        return removed

    # --------------------------------------------------------------- stats
    def stats(self) -> Dict[str, Any]:
        entries = list(self.entries())
        total_bytes = 0
        for fp in entries:
            try:
                total_bytes += os.path.getsize(self.path_for(fp))
            except OSError:
                pass
        lookups = self.hits + self.misses
        return {
            "root": self.root,
            "entries": len(entries),
            "bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }
