"""Event tracing for simulations.

The tracer records (cycle, channel, event, payload) tuples.  It backs the
Figure-5 style AXI transaction timelines and is deliberately simple: models
call :meth:`Tracer.record` at interesting points and analyses slice the event
list afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    cycle: int
    channel: str
    event: str
    payload: Any = None


@dataclass
class Tracer:
    """Collects :class:`TraceEvent` records during a simulation run."""

    enabled: bool = True
    events: List[TraceEvent] = field(default_factory=list)

    def record(self, cycle: int, channel: str, event: str, payload: Any = None) -> None:
        if self.enabled:
            self.events.append(TraceEvent(cycle, channel, event, payload))

    def filter(self, channel: Optional[str] = None, event: Optional[str] = None) -> List[TraceEvent]:
        out = self.events
        if channel is not None:
            out = [e for e in out if e.channel == channel]
        if event is not None:
            out = [e for e in out if e.event == event]
        return list(out)

    def spans(self, channel: str, start_event: str, end_event: str) -> List[Tuple[Any, int, int]]:
        """Pair start/end events by payload key into (key, start, end) spans."""
        starts: Dict[Any, int] = {}
        spans: List[Tuple[Any, int, int]] = []
        for e in self.events:
            if e.channel != channel:
                continue
            if e.event == start_event:
                starts[e.payload] = e.cycle
            elif e.event == end_event and e.payload in starts:
                spans.append((e.payload, starts.pop(e.payload), e.cycle))
        return spans

    def clear(self) -> None:
        self.events.clear()


#: A process-wide null tracer models can default to.
NULL_TRACER = Tracer(enabled=False)


def skip_summary(sim) -> Dict[str, float]:
    """Event-skipping counters of a :class:`~repro.sim.Simulator` run.

    ``cycles_total`` counts simulated time, ``cycles_stepped`` the cycles the
    kernel actually ticked; their ratio is the upper bound on the wall-clock
    speedup event-skipping bought.  All counters are exact regardless of
    whether fast-forward was enabled (they are simply zero when it was not).
    """
    stepped = sim.cycle - sim.cycles_skipped
    return {
        "cycles_total": sim.cycle,
        "cycles_stepped": stepped,
        "cycles_skipped": sim.cycles_skipped,
        "skip_events": sim.skip_events,
        "skip_fraction": sim.cycles_skipped / sim.cycle if sim.cycle else 0.0,
        "mean_skip_length": (
            sim.cycles_skipped / sim.skip_events if sim.skip_events else 0.0
        ),
    }


def render_skip_report(sim) -> str:
    """One-line human summary of :func:`skip_summary` for benchmark output."""
    s = skip_summary(sim)
    return (
        f"sim {sim.name!r}: {s['cycles_total']:.0f} cycles simulated, "
        f"{s['cycles_stepped']:.0f} stepped / {s['cycles_skipped']:.0f} skipped "
        f"({s['skip_fraction']:.1%}) in {s['skip_events']:.0f} jumps "
        f"(mean {s['mean_skip_length']:.1f} cycles)"
    )
