"""Event and span tracing for simulations.

The tracer records two kinds of data:

* flat :class:`TraceEvent` records — (cycle, channel, event, payload) tuples
  the models emit at interesting points (the Figure-5 AXI timelines slice
  these afterwards);
* :class:`Span` records — named intervals with parent links, used by the
  observability layer to reconstruct one host command's full lifetime
  (enqueue -> dispatch -> execute -> AXI bursts -> response) and exported as
  Chrome/Perfetto ``trace_event`` JSON by :mod:`repro.obs.export`.

Long traced runs stay bounded: construct the tracer with ``max_events`` and
both stores become ring buffers; evictions are counted in
``dropped_events``/``dropped_spans`` which the simulator exposes as metrics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    cycle: int
    channel: str
    event: str
    payload: Any = None


@dataclass
class Span:
    """A named interval on a track, with an optional parent span.

    ``track`` is a display grouping (``"Memcpy/core0"``); ``parent`` links a
    child (an AXI burst) to the enclosing interval (the host command) so the
    full command tree is reconstructible even when siblings overlap.
    """

    span_id: int
    name: str
    track: str
    begin_cycle: int
    end_cycle: Optional[int] = None
    parent: Optional[int] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[int]:
        if self.end_cycle is None:
            return None
        return self.end_cycle - self.begin_cycle


@dataclass
class Tracer:
    """Collects :class:`TraceEvent` and :class:`Span` records during a run.

    ``max_events`` (optional) caps *each* store with ring-buffer semantics so
    tracing can stay enabled on arbitrarily long runs; the number of evicted
    records is kept in ``dropped_events`` / ``dropped_spans``.
    """

    enabled: bool = True
    events: Any = field(default_factory=list)
    max_events: Optional[int] = None
    dropped_events: int = 0
    dropped_spans: int = 0

    def __post_init__(self) -> None:
        if self.max_events is not None:
            if self.max_events < 1:
                raise ValueError("max_events must be >= 1")
            self.events = deque(self.events, maxlen=self.max_events)
        self.span_log: Any = (
            deque(maxlen=self.max_events) if self.max_events is not None else []
        )
        self._open_spans: Dict[int, Span] = {}
        self._next_span_id = 1

    # -- flat events --------------------------------------------------------
    def record(self, cycle: int, channel: str, event: str, payload: Any = None) -> None:
        if not self.enabled:
            return
        if self.max_events is not None and len(self.events) == self.max_events:
            self.dropped_events += 1
        self.events.append(TraceEvent(cycle, channel, event, payload))

    def filter(self, channel: Optional[str] = None, event: Optional[str] = None) -> List[TraceEvent]:
        out = list(self.events)
        if channel is not None:
            out = [e for e in out if e.channel == channel]
        if event is not None:
            out = [e for e in out if e.event == event]
        return out

    def spans(self, channel: str, start_event: str, end_event: str) -> List[Tuple[Any, int, int]]:
        """Pair start/end events by payload key into (key, start, end) spans.

        Re-used payload keys are handled with a per-key stack: each end event
        pairs with the *most recent* unmatched start for that key, so nested
        or repeated use of one key (e.g. a recycled transaction tag) yields
        every span instead of silently overwriting the earlier start.
        """
        starts: Dict[Any, List[int]] = {}
        spans: List[Tuple[Any, int, int]] = []
        for e in self.events:
            if e.channel != channel:
                continue
            if e.event == start_event:
                starts.setdefault(e.payload, []).append(e.cycle)
            elif e.event == end_event:
                open_starts = starts.get(e.payload)
                if open_starts:
                    spans.append((e.payload, open_starts.pop(), e.cycle))
        return spans

    # -- spans --------------------------------------------------------------
    def begin_span(
        self,
        cycle: int,
        track: str,
        name: str,
        parent: Optional[int] = None,
        **args: Any,
    ) -> int:
        """Open a span; returns its id (0 when the tracer is disabled)."""
        if not self.enabled:
            return 0
        span_id = self._next_span_id
        self._next_span_id += 1
        span = Span(span_id, name, track, cycle, parent=parent, args=args)
        if self.max_events is not None and len(self.span_log) == self.max_events:
            evicted = self.span_log[0]
            self._open_spans.pop(evicted.span_id, None)
            self.dropped_spans += 1
        self.span_log.append(span)
        self._open_spans[span_id] = span
        return span_id

    def end_span(self, span_id: int, cycle: int, **args: Any) -> None:
        span = self._open_spans.pop(span_id, None)
        if span is None:
            return  # disabled tracer, evicted span, or double end
        span.end_cycle = cycle
        if args:
            span.args.update(args)

    def closed_spans(self, track: Optional[str] = None) -> List[Span]:
        out = [s for s in self.span_log if s.end_cycle is not None]
        if track is not None:
            out = [s for s in out if s.track == track]
        return out

    def children_of(self, span_id: int) -> List[Span]:
        return [s for s in self.span_log if s.parent == span_id]

    def clear(self) -> None:
        self.events.clear()
        self.span_log.clear()
        self._open_spans.clear()


#: A process-wide null tracer models can default to.
NULL_TRACER = Tracer(enabled=False)


def skip_summary(sim) -> Dict[str, float]:
    """Event-skipping counters of a :class:`~repro.sim.Simulator` run.

    ``cycles_total`` counts simulated time, ``cycles_stepped`` the cycles the
    kernel actually ticked; their ratio is the upper bound on the wall-clock
    speedup event-skipping bought.  All counters are exact regardless of
    whether fast-forward was enabled (they are simply zero when it was not).
    """
    stepped = sim.cycle - sim.cycles_skipped
    return {
        "cycles_total": sim.cycle,
        "cycles_stepped": stepped,
        "cycles_skipped": sim.cycles_skipped,
        "skip_events": sim.skip_events,
        "skip_fraction": sim.cycles_skipped / sim.cycle if sim.cycle else 0.0,
        "mean_skip_length": (
            sim.cycles_skipped / sim.skip_events if sim.skip_events else 0.0
        ),
    }


def render_skip_report(sim) -> str:
    """One-line human summary of :func:`skip_summary` for benchmark output."""
    s = skip_summary(sim)
    return (
        f"sim {sim.name!r}: {s['cycles_total']:.0f} cycles simulated, "
        f"{s['cycles_stepped']:.0f} stepped / {s['cycles_skipped']:.0f} skipped "
        f"({s['skip_fraction']:.1%}) in {s['skip_events']:.0f} jumps "
        f"(mean {s['mean_skip_length']:.1f} cycles)"
    )


def render_deadlock_report(dump: Dict[str, Any], top: int = 16) -> str:
    """Human rendering of a :meth:`~repro.sim.Simulator.state_dump`.

    Mirrors :func:`render_wake_report`'s table style: the busiest channels
    first (they are usually the smoking gun — a full queue nobody drains),
    then each component's own debug state, then the selective scheduler's
    wake heap.  ``top`` bounds the channel rows.
    """
    lines = [
        f"deadlock state of sim {dump.get('sim')!r} at cycle {dump.get('cycle')} "
        f"({dump.get('scheduling')} scheduling)"
    ]
    channels = dump.get("channels", {})
    if channels:
        rows = sorted(
            channels.items(),
            key=lambda kv: -(kv[1]["occupancy"] + kv[1]["staged"]),
        )
        shown = rows[:top] if top is not None else rows
        width = max(len(name) for name, _ in shown)
        lines.append(f"  {len(channels)} channel(s) holding items:")
        for name, c in shown:
            lines.append(
                f"    {name:<{width}} occupancy {c['occupancy']}/{c['capacity']}"
                f" staged {c['staged']} pending_pops {c['pending_pops']}"
            )
        if len(rows) > len(shown):
            lines.append(f"    ... {len(rows) - len(shown)} more")
    else:
        lines.append("  all channels empty")
    components = dump.get("components", {})
    comp_rows = list(components.items())
    shown_comps = comp_rows[:top] if top is not None else comp_rows
    for name, state in shown_comps:
        body = ", ".join(f"{k}={v!r}" for k, v in state.items())
        lines.append(f"  {name}: {body}")
    if len(comp_rows) > len(shown_comps):
        lines.append(
            f"  ... {len(comp_rows) - len(shown_comps)} more component(s) elided"
        )
    heap = dump.get("wake_heap")
    if heap is not None:
        if heap:
            entries = ", ".join(f"{name}@{cyc}" for cyc, name in heap[:top])
            lines.append(f"  wake heap ({len(heap)}): {entries}")
        else:
            lines.append("  wake heap: empty")
    woken = dump.get("woken")
    if woken:
        lines.append(f"  woken now: {', '.join(woken)}")
    return "\n".join(lines)


def compact_state_dump(
    dump: Dict[str, Any],
    max_channels: int = 64,
    max_components: int = 64,
    max_value_chars: int = 400,
) -> Dict[str, Any]:
    """Bound a :meth:`~repro.sim.Simulator.state_dump` for exception payloads.

    Large configs (64 cores across 4 dies) produce dumps whose repr runs to
    megabytes; errors carry a capped copy instead — the busiest channels and
    the first components, with elision counts so nothing disappears silently.
    Values whose repr exceeds ``max_value_chars`` are truncated in place.
    """

    def clip(value: Any) -> Any:
        text = repr(value)
        if len(text) <= max_value_chars:
            return value
        return text[:max_value_chars] + f"... <{len(text) - max_value_chars} chars elided>"

    out = dict(dump)
    channels = dump.get("channels", {})
    if len(channels) > max_channels:
        rows = sorted(
            channels.items(), key=lambda kv: -(kv[1]["occupancy"] + kv[1]["staged"])
        )
        out["channels"] = dict(rows[:max_channels])
        out["channels_elided"] = len(channels) - max_channels
    components = dump.get("components", {})
    capped = {}
    for i, (name, state) in enumerate(components.items()):
        if i >= max_components:
            out["components_elided"] = len(components) - max_components
            break
        capped[name] = {k: clip(v) for k, v in state.items()}
    out["components"] = capped
    heap = dump.get("wake_heap")
    if heap is not None and len(heap) > max_channels:
        out["wake_heap"] = heap[:max_channels]
        out["wake_heap_elided"] = len(heap) - max_channels
    return out


def export_state_dump(dump: Dict[str, Any], path: str) -> None:
    """Write a state dump as JSON (non-serialisable leaves become reprs)."""
    import json

    with open(path, "w", encoding="utf-8") as fh:
        json.dump(dump, fh, indent=2, sort_keys=True, default=repr)


def wake_summary(sim) -> Dict[str, Dict[str, float]]:
    """Per-component tick accounting of a :class:`~repro.sim.Simulator` run.

    For each component: ``ticks_executed`` (cycles its ``tick`` actually
    ran), ``ticks_elided`` (cycles the scheduler proved it a no-op and
    skipped it) and ``tick_fraction`` (executed / simulated cycles).  Under
    the selective schedule the counts are exact per component; under
    naive/fast-forward every component shares the stepped-cycle count.  The
    dict is keyed by component name in registration order — feed it to
    :func:`render_wake_report` for the human version.
    """
    total = sim.cycle
    out: Dict[str, Dict[str, float]] = {}
    for comp in sim._components:
        executed = sim.component_ticks(comp)
        out[comp.name] = {
            "ticks_executed": executed,
            "ticks_elided": total - executed,
            "tick_fraction": executed / total if total else 0.0,
        }
    return out


def render_wake_report(sim, top: int = 12) -> str:
    """Table of the busiest components by executed ticks.

    ``top`` bounds the rows (the aggregate line always includes everyone);
    pass ``top=None`` for the full table.  The aggregate elision fraction is
    the wall-clock headroom the selective scheduler exploited: 0% means
    every component ticked every cycle (a dense design or naive schedule).
    """
    summary = wake_summary(sim)
    total = sim.cycle
    n_comps = len(summary)
    executed_total = sum(s["ticks_executed"] for s in summary.values())
    possible = total * n_comps
    elided_frac = 1.0 - executed_total / possible if possible else 0.0
    lines = [
        f"sim {sim.name!r}: {total} cycles, {n_comps} components, "
        f"{executed_total:.0f}/{possible} component-ticks executed "
        f"({elided_frac:.1%} elided)"
    ]
    rows = sorted(
        summary.items(), key=lambda kv: kv[1]["ticks_executed"], reverse=True
    )
    if top is not None:
        rows = rows[:top]
    width = max((len(name) for name, _ in rows), default=4)
    for name, s in rows:
        lines.append(
            f"  {name:<{width}} {s['ticks_executed']:>10.0f} ticks "
            f"({s['tick_fraction']:>6.1%})"
        )
    return "\n".join(lines)
