"""Cycle-level simulation kernel used by every Beethoven substrate model."""

from repro.sim.compiled import CompiledProgram
from repro.sim.kernel import (
    NEVER,
    SCHEDULING_MODES,
    ChannelQueue,
    Component,
    DeadlockError,
    PartitionSyncTimeout,
    SimulationError,
    Simulator,
)
from repro.sim.trace import (
    NULL_TRACER,
    Span,
    TraceEvent,
    Tracer,
    compact_state_dump,
    export_state_dump,
    render_deadlock_report,
    render_skip_report,
    render_wake_report,
    skip_summary,
    wake_summary,
)

__all__ = [
    "ChannelQueue",
    "CompiledProgram",
    "Component",
    "DeadlockError",
    "NEVER",
    "PartitionSyncTimeout",
    "SCHEDULING_MODES",
    "SimulationError",
    "Simulator",
    "Span",
    "Tracer",
    "TraceEvent",
    "NULL_TRACER",
    "compact_state_dump",
    "export_state_dump",
    "render_deadlock_report",
    "render_skip_report",
    "render_wake_report",
    "skip_summary",
    "wake_summary",
]
