"""Cycle-level simulation kernel used by every Beethoven substrate model."""

from repro.sim.kernel import ChannelQueue, Component, SimulationError, Simulator
from repro.sim.trace import NULL_TRACER, TraceEvent, Tracer

__all__ = [
    "ChannelQueue",
    "Component",
    "SimulationError",
    "Simulator",
    "Tracer",
    "TraceEvent",
    "NULL_TRACER",
]
