"""Compiled tick-program backend for ``Simulator(scheduling="compiled")``.

The selective scheduler (``repro.sim.kernel``) already runs an event-driven
schedule, but it still pays generic Python dispatch for every woken component
every cycle: a bound ``tick`` call through the class, a ``next_event`` call, a
subscription-dict lookup per dirty channel, and method calls inside each tick
for every ``can_push``/``can_pop`` probe.  The compiled backend removes that
interpretation layer while executing the *same* schedule:

* **Closure specialisation** — at program build each component is asked for
  ``compile_tick()``: a specialised closure with its channel endpoints,
  metric counters (:class:`repro.obs.registry.Counter` objects are bound
  directly so updates are ``ctr.value += 1``) and timing constants captured
  as locals, making the same decisions as the interpreted ``tick`` in the
  same order.  Components without the hook run their plain bound ``tick``.

* **Chain fusion** — runs of *consecutively registered* components with
  *identical* wake subscription signatures (the same ``wake_channels()``
  set) are fused into one scheduling slot: one heap entry, one wake
  subscription, one dispatch.  Identical signatures mean the members are
  always co-woken, so group dispatch adds zero spurious ticks by
  construction (overlap-based fusion was measured a net loss: members woken
  through unshared channels dragged the whole group awake).  Fused members
  tick in registration-index order, and because the run is contiguous the
  global tick order — and therefore the order channels first become dirty,
  i.e. the channel-commit order — is exactly the naive order.  A spurious
  member tick (e.g. from a ``request_wake`` aimed at one member) is safe by
  the ``next_event`` no-op contract.

* **Flat commit drain** — dirty channels commit through an inlined loop that
  fuses ``sync_observations`` + ``commit`` into direct attribute arithmetic
  and wakes subscriber slots from a pre-computed tuple stored on the channel
  (``_csubs``), with no dict lookups.  Wake membership is the selective
  scheduler's rule: *any* committed activity (push or pop) on a channel
  wakes every component that listed it in ``wake_channels()``.  Waking only
  on the "foreign" edge (pushes for inputs, pops for outputs) was tried and
  is unsound — a component that consumes one of several pending items per
  tick (an :class:`~repro.noc.axi_node.AxiBufferNode` forwarding one AR per
  cycle) is re-woken by its *own* pop/push under selective, and that
  self-re-wake is what lets it drain the backlog on schedule.

Determinism contract: a compiled run produces the same cycle count, the same
channel statistics (``total_pushed``/``total_popped``/``occupancy_accum``/
``cycles_observed``) and the same stable metric dump as the naive, fast-
forward and selective schedules.  Only volatile metrics (tick/skip
accounting, trace event counts) and the wall clock differ.  The four-way
differential harness in ``tests/test_fast_forward.py`` and the property
tests in ``tests/test_compiled_kernel.py`` enforce this bit-for-bit.

``Component.request_wake`` keeps its selective semantics: a wake for a slot
later in the dispatch order that has not ticked this cycle is injected into
the current cycle (naive would have ticked it after the requester); anything
else — including a member of the currently executing fused slot that already
ticked — is woken next cycle.  This is how non-channel coupling such as
:class:`repro.memory.scratchpad.Memory`'s ``on_activity`` hook stays honoured.
"""

from __future__ import annotations

import time
from bisect import insort
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.kernel import NEVER, Component

#: Cap on members merged into one fused scheduling slot.  Fused members are
#: always co-woken (identical wake signatures), so the cap is a safety bound
#: on dispatch-group size, not a spurious-tick tradeoff.
MAX_FUSED = 8


def _hint_is_constant_never(comp: Component) -> bool:
    """True when the component's hint may be elided entirely.

    ``wake_only`` classes declare ``next_event`` constant at :data:`NEVER`;
    an instance-level ``next_event`` (fault hang injection) re-enables
    evaluation, since the patched hint is exactly how hangs reach the
    scheduler.
    """
    return comp.wake_only and "next_event" not in vars(comp)


class CompiledProgram:
    """A tick program compiled from a :class:`~repro.sim.kernel.Simulator`.

    Built lazily at ``run()`` and rebuilt whenever components or channels
    were added since (``Simulator._subs_stale``), so post-elaboration
    additions (the runtime server, testbench probes) are folded in exactly
    like a selective subscription rebuild.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        components: List[Component] = list(sim._components)
        self.components = components

        # -- per-component wake membership ----------------------------------
        # wake_chans[i]: channels whose commit (push *or* pop) wakes
        # component i — the same membership rule the selective scheduler
        # uses.  Waking only on the "foreign" edge (pushes for inputs, pops
        # for outputs) is unsound: a component that consumes one of several
        # pending items per tick (e.g. AxiBufferNode forwarding one AR) is
        # re-woken in selective by its *own* push/pop on those channels, and
        # that self-re-wake is what lets it drain the rest.
        wake_chans: List[List[Any]] = []
        fusable: List[bool] = []
        for idx, comp in enumerate(components):
            comp._sched_index = idx
            comp._wake_hook = self._request_wake
            chans = list(comp.wake_channels())
            wake_chans.append(chans)
            comp_vars = vars(comp)
            hinted = (
                type(comp).next_event is not Component.next_event or comp.wake_only
            )
            fusable.append(
                hinted
                and bool(chans)
                and "tick" not in comp_vars
                and "next_event" not in comp_vars
            )

        # -- fusion: partition into contiguous scheduling slots ------------
        # Fuse a component into the preceding slot only when its wake
        # subscription signature is *identical* to that slot's: the members
        # are then always co-woken, so ticking the whole group whenever any
        # member wakes adds zero spurious ticks.  (Overlap-based fusion was
        # measured a net loss on the dense 32-core benchmark: members woken
        # through non-shared channels dragged the rest of the group awake.)
        signatures = [
            frozenset(id(c) for c in wake_chans[idx])
            for idx in range(len(components))
        ]
        # Profiled runs disable fusion entirely: a fused slot is one dispatch,
        # so its wall-clock sample cannot be split among members and would
        # mis-attribute self-time to a "(fused)/..." pseudo-component.  The
        # profiler is volatile instrumentation — cycle results are identical
        # either way — so trading fusion's dispatch saving for correct
        # per-component attribution is free in model terms.
        fuse_ok = not sim.profile_enabled
        index_groups: List[List[int]] = []
        for idx in range(len(components)):
            if (
                index_groups
                and fuse_ok
                and fusable[idx]
                and fusable[index_groups[-1][-1]]
                and len(index_groups[-1]) < MAX_FUSED
                and signatures[idx] == signatures[index_groups[-1][-1]]
            ):
                index_groups[-1].append(idx)
            else:
                index_groups.append([idx])
        self.groups: List[List[Component]] = [
            [components[i] for i in g] for g in index_groups
        ]
        for slot, group in enumerate(self.groups):
            for comp in group:
                comp._cslot = slot

        # -- channel subscriptions ------------------------------------------
        # One flat tuple of subscriber slots per channel, stored on the
        # channel itself so the commit drain wakes without a dict lookup.
        sub_map: dict = {}
        chan_by_id: dict = {}
        for idx, comp in enumerate(components):
            slot = comp._cslot
            for chan in wake_chans[idx]:
                chan_by_id[id(chan)] = chan
                sub_map.setdefault(id(chan), set()).add(slot)
        for chan in sim._channels:
            chan._csubs = ()
        for cid, slots in sub_map.items():
            chan_by_id[cid]._csubs = tuple(sorted(slots))

        # -- per-slot tick and hint closures -------------------------------
        tick_fns: List[Callable[[int], None]] = []
        hint_fns: List[Optional[Callable[[int], Optional[float]]]] = []
        labels: List[str] = []
        specialized: List[str] = []
        for group in self.groups:
            member_fns = []
            for comp in group:
                fn = None
                # An instance-patched tick (fault hang injection) must win
                # over any class-level specialisation.
                if "tick" not in vars(comp):
                    hook = getattr(comp, "compile_tick", None)
                    if hook is not None:
                        fn = hook()
                        if fn is not None:
                            specialized.append(comp.name)
                member_fns.append(fn if fn is not None else comp.tick)
            if len(group) == 1:
                comp = group[0]
                tick_fns.append(member_fns[0])
                hint_fns.append(self._hint_fn(comp))
                labels.append(comp.name)
            else:
                tick_fns.append(self._fused_tick(group, member_fns))
                hint_fns.append(self._fused_hint(group))
                labels.append(f"(fused)/{group[0].name}(+{len(group) - 1})")
        self._tick_fns = tick_fns
        self._hint_fns = hint_fns
        self._labels = labels
        self.specialized = specialized  # component names using compile_tick

        # -- scheduler state ------------------------------------------------
        n_slots = len(self.groups)
        self._last_tick = [-1] * n_slots
        self._slot_ticks = [0] * n_slots
        self._wake_heap: List[Tuple[int, int]] = []
        self._woken: set = set()
        self._ready: Optional[List[int]] = None
        self._ready_pos = 0
        self._cur_slot = -1
        self._cmember = -1

    @staticmethod
    def _hint_fn(comp):
        """The wake hint evaluated after each tick of ``comp``.

        ``None`` elides the call entirely (constant-:data:`NEVER` classes);
        otherwise a ``compile_hint()`` closure is preferred when the class
        offers one.  A compiled hint may be *conservative* — waking no later
        than ``next_event`` would, possibly earlier — because early wakes are
        no-op ticks under the hint contract; it must still return
        :data:`NEVER` when the component is genuinely idle so quiescent jumps
        stay reachable.  An instance-level ``next_event`` (fault hang
        injection) disables both elision and specialisation.
        """
        if _hint_is_constant_never(comp):
            return None
        if "next_event" not in vars(comp):
            hook = getattr(comp, "compile_hint", None)
            if hook is not None:
                fn = hook()
                if fn is not None:
                    return fn
        return comp.next_event

    # -- fused slot helpers -------------------------------------------------
    def _fused_tick(self, group, fns):
        pairs = tuple(zip([m._sched_index for m in group], fns))

        def tick(cycle, self=self, pairs=pairs):
            for idx, fn in pairs:
                self._cmember = idx
                fn(cycle)

        return tick

    def _fused_hint(self, group):
        hint_fns = [
            fn for fn in (self._hint_fn(m) for m in group) if fn is not None
        ]
        if not hint_fns:
            return None
        if len(hint_fns) == 1:
            return hint_fns[0]

        def hint(cycle, hint_fns=hint_fns):
            best = NEVER
            for fn in hint_fns:
                h = fn(cycle)
                if h is None:
                    return None
                if h < best:
                    best = h
            return best

        return hint

    # -- wake plumbing -------------------------------------------------------
    def _request_wake(self, comp: Component) -> None:
        """Compiled analogue of ``Simulator._request_wake`` (same semantics)."""
        slot = comp._cslot
        if slot < 0:
            return
        ready = self._ready
        if ready is None:
            self._woken.add(slot)
            return
        cur = self._cur_slot
        if slot > cur and self._last_tick[slot] != self.sim.cycle:
            # Inject into the still-unvisited tail of this cycle's dispatch
            # order (kept sorted; the main loop walks it by index).
            insort(ready, slot, self._ready_pos)
        elif (
            slot == cur
            and len(self.groups[slot]) > 1
            and comp._sched_index > self._cmember
        ):
            pass  # later member of the currently executing fused slot: it
            # ticks this cycle anyway, in naive order, after the requester
        else:
            self._woken.add(slot)

    def flush_ticks(self) -> None:
        """Fold per-slot tick counts into ``Component._ticks_executed``.

        The hot loop counts ticks per slot (a list-index increment); the
        per-component counters the registry and wake reports read are only
        reconciled here, at run exit.
        """
        slot_ticks = self._slot_ticks
        for slot, group in enumerate(self.groups):
            count = slot_ticks[slot]
            if count:
                slot_ticks[slot] = 0
                for comp in group:
                    comp._ticks_executed += count

    def invalidate(self) -> None:
        """Called before this program is replaced by a rebuild."""
        self.flush_ticks()

    def wake_dump(self):
        """(wake_heap, woken) with slot labels, for deadlock dumps."""
        heap = sorted((cyc, self._labels[slot]) for cyc, slot in self._wake_heap)
        woken = sorted(self._labels[slot] for slot in self._woken)
        return heap, woken

    def prepare(self) -> None:
        """Wake everything and adopt pre-staged channels at ``run()`` entry.

        Mirrors ``Simulator._prepare_selective``: anything may have mutated
        between runs (host command submission, direct ``step()`` use, test
        pushes into registered ports), so the first cycle ticks every slot
        and channels carrying uncommitted traffic join the dirty list.
        """
        sim = self.sim
        self._woken.update(range(len(self.groups)))
        dirty = sim._dirty_channels
        for chan in sim._channels:
            if not chan._dirty and (chan._staged or chan._pop_count):
                chan._dirty = True
                dirty.append(chan)

    # -- the main loop -------------------------------------------------------
    def run(
        self, deadline: int, max_cycles: int, until: Optional[Callable[[], bool]]
    ) -> int:
        sim = self.sim
        self.prepare()
        tick_fns = self._tick_fns
        hint_fns = self._hint_fns
        last_tick = self._last_tick
        slot_ticks = self._slot_ticks
        wake_heap = self._wake_heap
        woken = self._woken
        woken_add = woken.add
        woken_update = woken.update
        dirty = sim._dirty_channels
        tracer = sim.tracer
        profile = sim.profile_enabled
        tick_profile = sim.tick_profile
        labels = self._labels
        clock = time.perf_counter_ns
        pred = bool(until()) if until is not None else False
        cycle = sim.cycle
        try:
            while cycle < deadline:
                if pred:
                    break
                while wake_heap and wake_heap[0][0] <= cycle:
                    woken_add(heappop(wake_heap)[1])
                if not woken:
                    # Nothing can act before the earliest scheduled wake:
                    # model state (and the predicate) is provably frozen.
                    target = wake_heap[0][0] if wake_heap else deadline
                    if target > deadline:
                        target = deadline
                    skipped = target - cycle
                    sim.cycles_skipped += skipped
                    sim.skip_events += 1
                    if tracer is not None:
                        tracer.record(cycle, "sim", "fast_forward", skipped)
                    sim.cycle = cycle = target
                    continue
                order = sorted(woken)
                woken.clear()
                self._ready = order
                cy1 = cycle + 1
                i = 0
                # Walk the sorted dispatch order by index; same-cycle wakes
                # (request_wake) insort into the unvisited tail, so the loop
                # bound is re-read each iteration.
                while i < len(order):
                    slot = order[i]
                    i += 1
                    self._ready_pos = i
                    if last_tick[slot] == cycle:
                        continue  # duplicate wake this cycle
                    last_tick[slot] = cycle
                    self._cur_slot = slot
                    if profile:
                        t0 = clock()
                        tick_fns[slot](cycle)
                        dt = clock() - t0
                        entry = tick_profile.get(labels[slot])
                        if entry is None:
                            tick_profile[labels[slot]] = [dt, 1]
                        else:
                            entry[0] += dt
                            entry[1] += 1
                    else:
                        tick_fns[slot](cycle)
                    slot_ticks[slot] += 1
                    hint_fn = hint_fns[slot]
                    if hint_fn is not None:
                        hint = hint_fn(cy1)
                        if hint is None or hint <= cy1:
                            woken_add(slot)
                        elif hint != NEVER:
                            heappush(wake_heap, (int(hint), slot))
                self._ready = None
                self._cur_slot = -1
                if dirty:
                    if profile:
                        t0 = clock()
                    for chan in dirty:
                        # sync_observations + commit, fused and inlined.
                        items = chan._items
                        lag = cycle - chan._anchor - chan.cycles_observed
                        if lag > 0:
                            chan.occupancy_accum += len(items) * (lag + 1)
                            chan.cycles_observed += lag + 1
                        else:
                            chan.occupancy_accum += len(items)
                            chan.cycles_observed += 1
                        if chan._pop_count:
                            del items[: chan._pop_count]
                            chan._pop_count = 0
                        staged = chan._staged
                        if staged:
                            items += staged
                            staged.clear()
                        # A dirty channel had activity by definition; wake
                        # every subscriber (selective's membership rule).
                        woken_update(chan._csubs)
                        chan._dirty = False
                    dirty.clear()
                    if profile:
                        dt = clock() - t0
                        entry = tick_profile.get("(kernel)/commit")
                        if entry is None:
                            tick_profile["(kernel)/commit"] = [dt, 1]
                        else:
                            entry[0] += dt
                            entry[1] += 1
                sim.cycle = cycle = cycle + 1
                pred = bool(until()) if until is not None else False
        finally:
            self.flush_ticks()
        sim._sync_channel_stats()
        if cycle >= deadline and until is not None and not pred:
            sim._raise_deadlock(max_cycles)
        return cycle
