"""Deterministic cycle-level simulation kernel.

The kernel models synchronous hardware as a set of :class:`Component` objects
exchanging tokens over registered :class:`ChannelQueue` channels.  Every
channel behaves like a FIFO whose occupancy is sampled at the start of the
cycle: pushes performed during a cycle become visible at the next cycle, and
pops performed during a cycle do not free space until the next cycle.  This
makes simulation results independent of the order in which components are
ticked, which is the property that lets us compose large systems without
worrying about evaluation order (the same property latency-insensitive
ready/valid design gives real hardware).

Four scheduling modes are supported, all cycle- and statistic-identical:

* ``"naive"`` — tick every component and commit every channel each cycle.
* ``"fast_forward"`` — naive stepping, plus whole-design jumps over windows
  where every channel is empty and every component publishes a
  :meth:`Component.next_event` hint.
* ``"selective"`` — per-component event-driven scheduling: a component is
  ticked only when one of its wake channels saw a push or pop, when its
  ``next_event`` hint arrives, or when it requested a wake through
  :meth:`Component.request_wake`.  Channel commits are sparse (only dirty
  channels commit) with lazy occupancy crediting, so per-channel statistics
  stay bit-identical to naive stepping.
* ``"compiled"`` — the selective schedule driven by a compiled tick program
  (:mod:`repro.sim.compiled`): at the first ``run()`` the component graph is
  specialised into closures with channel endpoints pre-resolved, contiguous
  always-co-woken chains are fused into single scheduling slots, and channel
  commits drain through flat per-channel subscriber arrays.  Identical
  cycles, channel statistics and stable metrics; only the wall clock and the
  volatile tick accounting differ.
"""

from __future__ import annotations

import time
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Dict, Generic, Iterable, List, Optional, Set, Tuple, TypeVar

T = TypeVar("T")

#: Sentinel a :meth:`Component.next_event` may return meaning "I have no
#: self-scheduled future work; only new channel traffic can wake me".
NEVER = float("inf")

#: Valid ``Simulator(scheduling=...)`` values.
SCHEDULING_MODES = ("naive", "fast_forward", "selective", "compiled")


class SimulationError(RuntimeError):
    """Raised for illegal channel usage or a wedged simulation."""


class DeadlockError(SimulationError):
    """A ``run()`` budget expired with its predicate still pending.

    Subclasses :class:`SimulationError` so existing ``except`` clauses keep
    working, but additionally carries ``dump`` — the structured state
    snapshot from :meth:`Simulator.state_dump` (channel occupancies,
    component debug states, wake-heap contents) taken at the moment the
    budget ran out.  ``repro.sim.trace.render_deadlock_report`` renders it.
    """

    def __init__(self, message: str, dump: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.dump = dump if dump is not None else {}


class PartitionSyncTimeout(DeadlockError):
    """A distributed partition worker missed its slice barrier.

    Raised by :class:`repro.dist.DistSimulator` when a worker process dies,
    aborts with an error, or fails to reach the exchange barrier within the
    configured wall-clock budget.  Subclasses :class:`DeadlockError` so the
    runtime's existing watchdog/deadlock handling (``ResponseHandle.get``,
    chaos classification) sees a typed, catchable stall instead of a hung
    exchange loop.  ``dump`` carries the supervisor partition's
    ``state_dump`` plus whatever the stalled partition could provide
    (its own ``state_dump`` on a clean abort, stderr tail / exit code on a
    crash) under ``dump["partitions"]``; ``partition`` is the id of the
    partition that missed the barrier.
    """

    def __init__(
        self,
        message: str,
        dump: Optional[Dict[str, Any]] = None,
        partition: Optional[int] = None,
    ) -> None:
        super().__init__(message, dump)
        self.partition = partition


class ChannelQueue(Generic[T]):
    """A registered FIFO channel with start-of-cycle visibility semantics.

    ``can_push``/``push`` are the producer interface and ``can_pop``/``peek``/
    ``pop`` the consumer interface.  Capacity admission uses the occupancy at
    the start of the cycle plus anything staged this cycle, so a full queue
    does not accept a push in the same cycle one of its items is popped.
    """

    # Slotted: channels are the hottest objects in the kernel (every guard in
    # every tick probes one), and fixed-offset attribute access measurably
    # beats dict lookup in both the selective and compiled hot loops.
    __slots__ = (
        "capacity",
        "name",
        "_items",
        "_staged",
        "_pop_count",
        "total_pushed",
        "total_popped",
        "occupancy_accum",
        "cycles_observed",
        "_sink",
        "_dirty",
        "_anchor",
        "_csubs",
    )

    def __init__(self, capacity: int = 2, name: str = "chan") -> None:
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._items: List[T] = []
        self._staged: List[T] = []
        self._pop_count = 0
        # Statistics, useful for NoC link utilisation reporting.
        self.total_pushed = 0
        self.total_popped = 0
        self.occupancy_accum = 0
        self.cycles_observed = 0
        # Selective-scheduling hooks, installed by Simulator.register_channel:
        # ``_sink`` is the simulator's dirty list (None outside selective and
        # compiled modes), ``_dirty`` marks membership in it, and ``_anchor``
        # is the registration offset that lets sparse commits credit elided
        # observations lazily.
        self._sink: Optional[List["ChannelQueue[Any]"]] = None
        self._dirty = False
        self._anchor = 0
        # Compiled-scheduling subscriber array, installed by CompiledProgram:
        # the scheduling slots woken when this channel commits activity.
        self._csubs: Tuple[int, ...] = ()

    # -- producer side ----------------------------------------------------
    def can_push(self, n: int = 1) -> bool:
        return len(self._items) + len(self._staged) + n <= self.capacity

    def push(self, item: T) -> None:
        if not self.can_push():
            raise SimulationError(f"push to full channel {self.name!r}")
        self._staged.append(item)
        self.total_pushed += 1
        if not self._dirty and self._sink is not None:
            self._dirty = True
            self._sink.append(self)

    # -- consumer side -----------------------------------------------------
    def can_pop(self) -> bool:
        return self._pop_count < len(self._items)

    def peek(self, offset: int = 0) -> T:
        # The visible window is [_pop_count, len(_items)): items popped this
        # cycle are already spoken for, items staged this cycle are not yet
        # visible.  A negative offset would reach back into staged pops, so
        # peek enforces the same window ``__len__``/``can_pop`` advertise.
        if offset < 0 or offset >= len(self):
            raise SimulationError(f"peek outside visible window of channel {self.name!r}")
        return self._items[self._pop_count + offset]

    def pop(self) -> T:
        if not self.can_pop():
            raise SimulationError(f"pop from empty channel {self.name!r}")
        item = self._items[self._pop_count]
        self._pop_count += 1
        self.total_popped += 1
        if not self._dirty and self._sink is not None:
            self._dirty = True
            self._sink.append(self)
        return item

    # -- kernel interface ----------------------------------------------------
    def commit(self) -> None:
        """Apply this cycle's pops and pushes; called once per cycle."""
        self.occupancy_accum += len(self._items)
        self.cycles_observed += 1
        if self._pop_count:
            del self._items[: self._pop_count]
            self._pop_count = 0
        if self._staged:
            self._items.extend(self._staged)
            self._staged.clear()

    def credit_idle_cycles(self, n: int) -> None:
        """Account ``n`` elided commits during a fast-forward.

        Skipped cycles carry no staged traffic, so each elided commit would
        have observed the current occupancy unchanged; crediting them keeps
        ``mean_occupancy`` (and every cycle-normalised statistic built on
        ``cycles_observed``) exactly equal to a naively stepped run.
        """
        self.occupancy_accum += len(self._items) * n
        self.cycles_observed += n

    def sync_observations(self, cycle: int) -> None:
        """Credit every observation elided since the last commit/sync.

        Under sparse commit a channel is only committed on cycles it saw a
        push or pop; its occupancy was constant in between, so the elided
        commits are reconstructed exactly: at ``cycle`` the channel should
        have been observed ``cycle - _anchor`` times in total.
        """
        lag = cycle - self._anchor - self.cycles_observed
        if lag > 0:
            self.occupancy_accum += len(self._items) * lag
            self.cycles_observed += lag

    def register_metrics(self, scope) -> None:
        """Bind this channel's statistics into a metric registry scope.

        The stats themselves stay plain int fields — ``commit`` runs once per
        channel per cycle and is the kernel's hottest statistic — so the
        registry holds lazy views that read the live values at dump time.
        """
        scope.bind("pushed", lambda: self.total_pushed)
        scope.bind("popped", lambda: self.total_popped)
        scope.bind("occupancy_accum", lambda: self.occupancy_accum)
        scope.bind("cycles_observed", lambda: self.cycles_observed)
        scope.bind("mean_occupancy", lambda: self.mean_occupancy)
        scope.bind("capacity", lambda: self.capacity)

    def __len__(self) -> int:
        """Occupancy visible to consumers this cycle."""
        return len(self._items) - self._pop_count

    @property
    def mean_occupancy(self) -> float:
        if not self.cycles_observed:
            return 0.0
        return self.occupancy_accum / self.cycles_observed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChannelQueue({self.name!r}, {len(self._items)}/{self.capacity})"


class Component:
    """Base class for everything that acts on each clock edge."""

    # Selective-scheduling bookkeeping, installed by Simulator.add; class
    # attributes so existing subclasses need no __init__ changes.
    _sched_index = -1
    _wake_hook: Optional[Callable[["Component"], None]] = None
    _last_tick_cycle = -1
    _ticks_executed = 0
    # Compiled-scheduling slot assignment, installed by CompiledProgram.
    _cslot = -1

    #: Declares ``next_event`` constant at :data:`NEVER`: the component only
    #: ever progresses on channel traffic (pure dataflow elements such as NoC
    #: buffer nodes).  The compiled backend then elides the post-tick hint
    #: call entirely.  Honoured only while ``next_event`` is not shadowed on
    #: the instance (fault injectors patch instance ``next_event`` to model
    #: hangs, which re-enables hint evaluation).
    wake_only = False

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__

    def tick(self, cycle: int) -> None:
        """Advance one cycle; read channel state, stage pushes/pops."""
        raise NotImplementedError

    def next_event(self, cycle: int) -> Optional[float]:
        """Earliest cycle >= ``cycle`` at which this component can make
        progress assuming no new channel traffic arrives, or :data:`NEVER`
        if only channel traffic can wake it, or ``None`` (the safe default)
        for "tick me every cycle".

        The contract backing event-skipping: when a component returns a hint
        ``h``, ticking it at any cycle in ``[cycle, h)`` in which none of its
        :meth:`wake_channels` saw a committed push or pop since its previous
        tick must be a no-op (no pushes, no pops, no state or statistics
        change).  This is a strictly stronger requirement than the original
        fast-forward contract (which only demanded no-op-ness when *every*
        channel was empty); all framework components satisfy it.  Components
        whose ``tick`` mutates state unconditionally (countdowns, pipelines)
        must either return ``None`` or keep their timing in absolute cycles.
        """
        return None

    def channels(self) -> Iterable[ChannelQueue[Any]]:
        """Channels owned by this component (auto-registered)."""
        return [v for v in vars(self).values() if isinstance(v, ChannelQueue)]

    def wake_channels(self) -> Iterable[ChannelQueue[Any]]:
        """Channels whose push/pop activity may let this component progress.

        The selective scheduler subscribes the component to each of these:
        any committed push or pop on one wakes it the next cycle.  The set
        must cover every channel the component's ``tick`` reads *or* probes
        for space (``can_push``) — a full output channel is part of the wake
        set because only a pop on it can unblock the producer.

        The default — the component's own :meth:`channels` — is correct for
        components that only touch channels they own.  Components that touch
        foreign channels (NoC nodes forwarding between ports, the command
        router pushing into adapters, cores driving Reader/Writer queues)
        must override this with the complete set; a superset is always safe
        (spurious wakes cost time, never correctness).

        The compiled backend uses the same membership rule (any committed
        push or pop wakes every subscriber) — waking only on the "foreign"
        edge is unsound, because a component that consumes one of several
        pending items per tick relies on its *own* activity re-waking it to
        drain the rest.  Components may also define ``compile_tick()``
        returning a decision-identical specialised closure ``fn(cycle)`` (or
        ``None`` to decline); the compiled backend prefers it over the plain
        bound ``tick`` unless the instance's ``tick`` has been patched
        (fault hang injection).
        """
        return self.channels()

    def request_wake(self) -> None:
        """Ask the selective scheduler to tick this component again.

        Escape hatch for progress enabled by *non-channel* coupling: e.g. a
        core calling :meth:`repro.memory.scratchpad.Memory.read` directly on
        another component's memory.  Safe to call from any mode (a no-op
        outside selective scheduling) and from inside a tick.
        """
        hook = self._wake_hook
        if hook is not None:
            hook(self)

    @property
    def metric_path(self) -> str:
        """Namespace path for this component's metrics.

        Component names already encode the design hierarchy with dots
        (``reader.Memcpy.c0.copy_in0``); the default maps them to registry
        paths (``reader/Memcpy/c0/copy_in0``).  Subclasses override to place
        themselves under a subsystem root (``dram/``, ``runtime/``...).
        """
        return self.name.replace(".", "/")

    def register_metrics(self, scope) -> None:
        """Attach/bind this component's metrics under ``scope``.

        Called by :meth:`Simulator.add`; the default registers nothing
        (channel statistics are bound separately by the simulator).
        """

    def debug_state(self) -> Optional[Dict[str, Any]]:
        """Structured snapshot for deadlock dumps, or ``None`` when idle.

        Components with interesting blocking state (the runtime server's
        waiters, the memory controller's in-flight transactions) override
        this; :meth:`Simulator.state_dump` collects every non-``None`` result
        into the :class:`DeadlockError` payload.
        """
        return None

    #: Attribute names the default snapshot skips, on top of the scheduler
    #: wiring (``_sched_index``/``_wake_hook``/``_cslot``).  Subclasses list
    #: structural fields that the rebuild recreates and must not be
    #: overwritten from a checkpoint.
    _snapshot_exclude: Tuple[str, ...] = ()

    def snapshot_state(self, fr) -> Dict[str, Any]:
        """Freeze this component's mutable state for ``repro.snapshot``.

        The default captures every instance attribute through the freezer
        (channels and infrastructure become references, callables are
        skipped, ``_snapshot_exclude`` names are dropped); components whose
        state embeds host-side callbacks (the runtime server) override both
        this and :meth:`restore_state` with an explicit protocol.
        """
        from repro.snapshot.engine import SCHED_ATTRS  # lazy: avoid cycle

        return fr.freeze_attrs(self, exclude=SCHED_ATTRS)

    def restore_state(self, state: Dict[str, Any], th) -> None:
        """Apply a :meth:`snapshot_state` payload onto this live component."""
        th.thaw_attrs(self, state)


class Simulator:
    """Owns the clock; ticks components and commits channels each cycle.

    ``scheduling`` selects one of four cycle-identical schedules:

    * ``"naive"`` ticks everything every cycle;
    * ``"fast_forward"`` (the legacy ``fast_forward=True``) adds whole-design
      jumps over globally quiescent windows;
    * ``"selective"`` runs the per-component event-driven scheduler: each
      cycle only the components woken by dirty channels, matured
      ``next_event`` hints, or explicit :meth:`Component.request_wake` calls
      are ticked, and only dirty channels commit (with lazy occupancy
      crediting so every statistic matches naive stepping exactly);
    * ``"compiled"`` executes the same schedule through a tick program
      compiled at the first ``run()`` (see :mod:`repro.sim.compiled`):
      specialised per-component closures, fused contiguous co-woken chains,
      push/pop-split channel subscriptions, and an inlined commit drain.

    A component returning ``None`` from :meth:`Component.next_event` (the
    default) is ticked every cycle under every schedule, so unhinted user
    cores are always safe.
    """

    def __init__(
        self,
        name: str = "sim",
        fast_forward: bool = False,
        tracer: Optional["Tracer"] = None,
        registry=None,
        profile: bool = False,
        scheduling: Optional[str] = None,
    ) -> None:
        from repro.obs.registry import MetricRegistry  # lazy: avoid import cycle

        if scheduling is None:
            scheduling = "fast_forward" if fast_forward else "naive"
        if scheduling not in SCHEDULING_MODES:
            raise ValueError(
                f"unknown scheduling mode {scheduling!r}; pick one of {SCHEDULING_MODES}"
            )
        self.name = name
        self.cycle = 0
        self.scheduling = scheduling
        self.fast_forward = scheduling == "fast_forward"
        self.tracer = tracer
        self._components: List[Component] = []
        self._channels: List[ChannelQueue[Any]] = []
        self._channel_ids = set()
        self._quiescent = False
        # Skip accounting, surfaced by :func:`repro.sim.trace.skip_summary`.
        self.cycles_skipped = 0
        self.skip_events = 0
        # Selective-scheduler state.  The compiled backend reuses the dirty
        # list, lazy anchors and per-component tick accounting, so every
        # ``_selective`` guard below covers both modes; only run() dispatch
        # distinguishes them.
        self._selective = scheduling in ("selective", "compiled")
        self._compiled = scheduling == "compiled"
        self._program = None  # CompiledProgram, built lazily at run()
        self._dirty_channels: List[ChannelQueue[Any]] = []
        self._subs: Dict[int, List[int]] = {}
        self._subs_stale = True
        self._wake_heap: List[Tuple[int, int]] = []
        self._woken: Set[int] = set()
        self._ready: Optional[List[int]] = None  # heap of indices, mid-cycle only
        self._current_idx = -1
        # Unified metrics: every added component/channel is adopted here.
        self.registry = registry if registry is not None else MetricRegistry()
        self._bind_own_metrics()
        # Wall-clock self-time profile: component name -> [ns_total, calls].
        self.profile_enabled = profile
        self.tick_profile: Dict[str, List[float]] = {}

    def _bind_own_metrics(self) -> None:
        scope = self.registry.scope("sim")
        scope.bind("cycles_total", lambda: self.cycle)
        # Skip accounting depends on the schedule that ran, so it is
        # volatile: excluded from the stable dump the differential
        # harness compares bit-for-bit across scheduling modes.
        scope.bind("cycles_skipped", lambda: self.cycles_skipped, volatile=True)
        scope.bind(
            "cycles_stepped", lambda: self.cycle - self.cycles_skipped, volatile=True
        )
        scope.bind("skip_events", lambda: self.skip_events, volatile=True)
        if self.tracer is not None:
            tracer = self.tracer
            tscope = self.registry.scope("trace")
            # Event counts are volatile: fast-forward jumps log a trace event
            # per skip, so they legitimately differ from a naive run.
            tscope.bind("events", lambda: len(tracer.events), volatile=True)
            tscope.bind("spans", lambda: len(getattr(tracer, "span_log", ())))
            tscope.bind(
                "dropped_events", lambda: tracer.dropped_events, volatile=True
            )
            tscope.bind("dropped_spans", lambda: tracer.dropped_spans)

    def add(self, component: Component) -> Component:
        self._components.append(component)
        self._subs_stale = True
        for chan in component.channels():
            self.register_channel(chan)
        scope = self.registry.scope(component.metric_path)
        component.register_metrics(scope)
        # Per-component scheduling effectiveness, for wake-set reporting.
        scope.bind(
            "ticks_executed",
            lambda c=component: self.component_ticks(c),
            volatile=True,
        )
        scope.bind(
            "ticks_elided",
            lambda c=component: self.cycle - self.component_ticks(c),
            volatile=True,
        )
        return component

    def register_channel(self, chan: ChannelQueue[Any]) -> ChannelQueue[Any]:
        if id(chan) not in self._channel_ids:
            self._channel_ids.add(id(chan))
            self._channels.append(chan)
            self._subs_stale = True
            if self._selective:
                chan._sink = self._dirty_channels
                # Anchor so that a fully synced channel always satisfies
                # cycles_observed == sim.cycle - _anchor, exactly as if it
                # had been committed on every cycle since registration.
                chan._anchor = self.cycle - chan.cycles_observed
            chan.register_metrics(
                self.registry.scope("chan/" + chan.name.replace(".", "/"))
            )
        return chan

    def component_ticks(self, component: Component) -> int:
        """Cycles in which ``component.tick`` actually ran.

        Exact per-component counts are maintained by the selective scheduler;
        under naive/fast-forward schedules every stepped cycle ticks every
        component, so the count is derived.
        """
        if self._selective:
            return component._ticks_executed
        return self.cycle - self.cycles_skipped

    # -- stepping ------------------------------------------------------------
    def step(self) -> None:
        """Advance exactly one cycle, ticking everything (naive semantics).

        All three scheduling modes share these step semantics so callers may
        freely interleave ``step()`` with ``run()``; under selective
        scheduling the next ``run()`` re-wakes every component, and the
        commit sweep first credits any lazily deferred channel observations.
        """
        if self.profile_enabled:
            return self._step_profiled()
        cycle = self.cycle
        selective = self._selective
        for component in self._components:
            component.tick(cycle)
            if selective:
                component._ticks_executed += 1
                component._last_tick_cycle = cycle
        quiescent = True
        for chan in self._channels:
            if selective:
                chan.sync_observations(cycle)
                chan._dirty = False
            chan.commit()
            if chan._items:
                quiescent = False
        if selective:
            self._dirty_channels.clear()
        self._quiescent = quiescent
        self.cycle = cycle + 1

    def _step_profiled(self) -> None:
        """One cycle with per-component wall-clock attribution.

        Self-time only: each component's tick is timed individually, and the
        channel-commit sweep is booked under ``(kernel)/commit`` so simulator
        overhead is distinguishable from model cost.
        """
        profile = self.tick_profile
        clock = time.perf_counter_ns
        cycle = self.cycle
        selective = self._selective
        for component in self._components:
            t0 = clock()
            component.tick(cycle)
            dt = clock() - t0
            if selective:
                component._ticks_executed += 1
                component._last_tick_cycle = cycle
            entry = profile.get(component.name)
            if entry is None:
                profile[component.name] = [dt, 1]
            else:
                entry[0] += dt
                entry[1] += 1
        t0 = clock()
        quiescent = True
        for chan in self._channels:
            if selective:
                chan.sync_observations(cycle)
                chan._dirty = False
            chan.commit()
            if chan._items:
                quiescent = False
        if selective:
            self._dirty_channels.clear()
        dt = clock() - t0
        entry = profile.get("(kernel)/commit")
        if entry is None:
            profile["(kernel)/commit"] = [dt, 1]
        else:
            entry[0] += dt
            entry[1] += 1
        self._quiescent = quiescent
        self.cycle = cycle + 1

    def run(
        self,
        max_cycles: int,
        until: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run until ``until()`` is true (checked between cycles) or the cycle
        budget is exhausted.  Returns the cycle count reached.  Raises
        :class:`SimulationError` when the budget runs out while a predicate is
        pending, because that almost always means the model deadlocked.

        Under the skipping schedules (fast-forward and selective), ``until``
        must be a function of model state (channel/component contents), not of
        the raw cycle counter: skipped cycles are exactly the ones in which no
        model state changes, so a state predicate is evaluated at every cycle
        where its value could flip — but a predicate on ``sim.cycle`` itself
        could fire inside a skipped window and be missed.

        The predicate is evaluated exactly once per advanced cycle (the
        result is cached for the cycle, so predicate-heavy runs are not
        charged twice for the fast-forward guard's re-check).
        """
        deadline = self.cycle + max_cycles
        if self._compiled:
            return self._run_compiled(deadline, max_cycles, until)
        if self._selective:
            return self._run_selective(deadline, max_cycles, until)
        pred = bool(until()) if until is not None else False
        while self.cycle < deadline:
            if pred:
                return self.cycle
            self.step()
            pred = bool(until()) if until is not None else False
            if (
                self.fast_forward
                and self._quiescent
                and self.cycle < deadline
                # Never skip once the predicate holds: the caller must observe
                # the first satisfying cycle, not some later wake-up.
                and not pred
            ):
                self._try_fast_forward(deadline, to_deadline_ok=until is None)
        if until is not None and not pred:
            self._raise_deadlock(max_cycles)
        return self.cycle

    def run_slice(self, n_cycles: int) -> int:
        """Advance exactly ``n_cycles`` cycles with no completion predicate.

        The distributed engine's unit of execution: a partition runs one
        lookahead slice between barriers, with any externally-injected bridge
        traffic already sitting in its ingress delay lines.  Semantically just
        ``run(n_cycles, until=None)`` — which can never raise
        :class:`DeadlockError` — but named so call sites read as slice-bounded
        execution rather than budgeted completion waits.
        """
        if n_cycles <= 0:
            return self.cycle
        return self.run(n_cycles, until=None)

    # -- selective scheduling -------------------------------------------------
    def _prepare_selective(self) -> None:
        """Refresh subscriptions and wake state at ``run()`` entry.

        Anything may have mutated between run calls — the host submitted
        commands, a test pushed into a registered port, ``step()`` was used
        directly — so every component is woken for the first cycle (which is
        exactly a naive tick-everything cycle) and channels carrying staged
        traffic from before their registration are adopted into the dirty
        list.
        """
        if self._subs_stale:
            subs: Dict[int, List[int]] = {}
            for idx, comp in enumerate(self._components):
                comp._sched_index = idx
                comp._wake_hook = self._request_wake
                for chan in comp.wake_channels():
                    subs.setdefault(id(chan), []).append(idx)
            self._subs = subs
            self._subs_stale = False
        self._woken.update(range(len(self._components)))
        dirty = self._dirty_channels
        for chan in self._channels:
            if not chan._dirty and (chan._staged or chan._pop_count):
                chan._dirty = True
                dirty.append(chan)

    def _request_wake(self, component: Component) -> None:
        """Wake ``component`` at the earliest cycle that matches naive order.

        Called mid-tick-loop (via :meth:`Component.request_wake`) when
        component A mutates B's non-channel state: if B is later in
        registration order and has not ticked this cycle it is injected into
        the current cycle's ready heap (naive would tick it after A this very
        cycle); otherwise it is woken for the next cycle (naive ticked it
        before A, necessarily as a no-op on the pre-mutation state).
        """
        idx = component._sched_index
        if idx < 0:
            return
        ready = self._ready
        if (
            ready is not None
            and idx > self._current_idx
            and component._last_tick_cycle != self.cycle
        ):
            heappush(ready, idx)
        else:
            self._woken.add(idx)

    def _run_selective(
        self, deadline: int, max_cycles: int, until: Optional[Callable[[], bool]]
    ) -> int:
        self._prepare_selective()
        components = self._components
        subs = self._subs
        wake_heap = self._wake_heap
        woken = self._woken
        dirty = self._dirty_channels
        tracer = self.tracer
        profile = self.profile_enabled
        tick_profile = self.tick_profile
        clock = time.perf_counter_ns
        pred = bool(until()) if until is not None else False
        while self.cycle < deadline:
            if pred:
                break
            cycle = self.cycle
            while wake_heap and wake_heap[0][0] <= cycle:
                woken.add(heappop(wake_heap)[1])
            if not woken:
                # Nothing can act before the earliest scheduled wake: the
                # model state is provably frozen, so jump (the predicate's
                # value is frozen with it).
                target = wake_heap[0][0] if wake_heap else deadline
                if target > deadline:
                    target = deadline
                skipped = target - cycle
                self.cycles_skipped += skipped
                self.skip_events += 1
                if tracer is not None:
                    tracer.record(cycle, "sim", "fast_forward", skipped)
                self.cycle = target
                continue
            ready = list(woken)
            heapify(ready)
            woken.clear()
            self._ready = ready
            while ready:
                idx = heappop(ready)
                comp = components[idx]
                if comp._last_tick_cycle == cycle:
                    continue  # duplicate wake this cycle
                comp._last_tick_cycle = cycle
                self._current_idx = idx
                if profile:
                    t0 = clock()
                    comp.tick(cycle)
                    dt = clock() - t0
                    entry = tick_profile.get(comp.name)
                    if entry is None:
                        tick_profile[comp.name] = [dt, 1]
                    else:
                        entry[0] += dt
                        entry[1] += 1
                else:
                    comp.tick(cycle)
                comp._ticks_executed += 1
                hint = comp.next_event(cycle + 1)
                if hint is None or hint <= cycle + 1:
                    woken.add(idx)
                elif hint != NEVER:
                    heappush(wake_heap, (int(hint), idx))
            self._ready = None
            self._current_idx = -1
            if dirty:
                if profile:
                    t0 = clock()
                for chan in dirty:
                    chan.sync_observations(cycle)
                    chan.commit()
                    chan._dirty = False
                    for cidx in subs.get(id(chan), ()):
                        woken.add(cidx)
                dirty.clear()
                if profile:
                    dt = clock() - t0
                    entry = tick_profile.get("(kernel)/commit")
                    if entry is None:
                        tick_profile["(kernel)/commit"] = [dt, 1]
                    else:
                        entry[0] += dt
                        entry[1] += 1
            self.cycle = cycle + 1
            pred = bool(until()) if until is not None else False
        # Bring every channel's lazily deferred observation statistics up to
        # the final cycle before anyone reads them.
        self._sync_channel_stats()
        if self.cycle >= deadline and until is not None and not pred:
            self._raise_deadlock(max_cycles)
        return self.cycle

    # -- compiled scheduling ---------------------------------------------------
    def _run_compiled(
        self, deadline: int, max_cycles: int, until: Optional[Callable[[], bool]]
    ) -> int:
        """Run through the compiled tick program, (re)building it if stale.

        The program is compiled lazily at the first ``run()`` and recompiled
        whenever a component or channel was added since (``_subs_stale``), so
        late additions such as the runtime server joining after elaboration
        are picked up exactly like the selective scheduler's subscription
        rebuild.
        """
        from repro.sim.compiled import CompiledProgram  # lazy: avoid cycle

        program = self._program
        if program is None or self._subs_stale:
            if program is not None:
                program.invalidate()
            program = self._program = CompiledProgram(self)
            self._subs_stale = False
        return program.run(deadline, max_cycles, until)

    def _sync_channel_stats(self) -> None:
        cycle = self.cycle
        for chan in self._channels:
            chan.sync_observations(cycle)

    # -- deadlock diagnosis ---------------------------------------------------
    def state_dump(self) -> Dict[str, Any]:
        """Structured snapshot of everything that could explain a stall.

        Collected when a ``run()`` budget expires with its predicate pending:
        non-empty channel occupancies, each component's
        :meth:`Component.debug_state`, and (under selective scheduling) the
        wake heap and woken set.  Cheap enough to also call ad hoc while
        debugging a live simulation.
        """
        channels: Dict[str, Dict[str, int]] = {}
        for chan in self._channels:
            occ = len(chan)
            staged = len(chan._staged)
            if occ or staged or chan._pop_count:
                channels[chan.name] = {
                    "occupancy": occ,
                    "staged": staged,
                    "pending_pops": chan._pop_count,
                    "capacity": chan.capacity,
                }
        components: Dict[str, Dict[str, Any]] = {}
        for comp in self._components:
            try:
                state = comp.debug_state()
            except Exception:  # noqa: BLE001 — diagnosis must never mask the stall
                state = {"debug_state": "unavailable"}
            if state:
                components[comp.name] = state
        dump: Dict[str, Any] = {
            "sim": self.name,
            "cycle": self.cycle,
            "scheduling": self.scheduling,
            "channels": channels,
            "components": components,
        }
        if self._compiled:
            program = self._program
            if program is not None:
                dump["wake_heap"], dump["woken"] = program.wake_dump()
        elif self._selective:
            dump["wake_heap"] = sorted(
                (cyc, self._components[idx].name) for cyc, idx in self._wake_heap
            )
            dump["woken"] = sorted(self._components[idx].name for idx in self._woken)
        return dump

    def _raise_deadlock(self, max_cycles: int) -> None:
        from repro.sim.trace import compact_state_dump, render_deadlock_report

        # Cap the attached dump: a 64-core/4-die config otherwise produces a
        # multi-megabyte exception that drowns the diagnosis (the full dump
        # stays available via state_dump() / tools' --export-state-dump).
        dump = compact_state_dump(self.state_dump())
        raise DeadlockError(
            f"simulation {self.name!r} did not converge in {max_cycles} cycles\n"
            + render_deadlock_report(dump),
            dump,
        )

    # -- event skipping -----------------------------------------------------
    def _try_fast_forward(self, deadline: int, to_deadline_ok: bool) -> None:
        """Jump to the earliest pending component event, if one is provable."""
        if self.profile_enabled:
            t0 = time.perf_counter_ns()
            try:
                return self._fast_forward_inner(deadline, to_deadline_ok)
            finally:
                dt = time.perf_counter_ns() - t0
                entry = self.tick_profile.get("(kernel)/fast_forward")
                if entry is None:
                    self.tick_profile["(kernel)/fast_forward"] = [dt, 1]
                else:
                    entry[0] += dt
                    entry[1] += 1
        return self._fast_forward_inner(deadline, to_deadline_ok)

    def _fast_forward_inner(self, deadline: int, to_deadline_ok: bool) -> None:
        target = NEVER
        for component in self._components:
            hint = component.next_event(self.cycle)
            if hint is None:
                return  # unhinted component: must tick every cycle
            if hint < target:
                target = hint
        if target == NEVER:
            # Nothing self-scheduled anywhere.  With no predicate pending the
            # remaining cycles are provably dead, so jump to the deadline;
            # with a predicate we keep naive stepping (the budget-exhausted
            # error path must observe the same cycles it would naively).
            if not to_deadline_ok:
                return
            target = deadline
        target = min(int(target), deadline)
        if target <= self.cycle:
            return
        skipped = target - self.cycle
        for chan in self._channels:
            chan.credit_idle_cycles(skipped)
        self.cycles_skipped += skipped
        self.skip_events += 1
        if self.tracer is not None:
            self.tracer.record(self.cycle, "sim", "fast_forward", skipped)
        self.cycle = target
