"""Deterministic cycle-level simulation kernel.

The kernel models synchronous hardware as a set of :class:`Component` objects
exchanging tokens over registered :class:`ChannelQueue` channels.  Every
channel behaves like a FIFO whose occupancy is sampled at the start of the
cycle: pushes performed during a cycle become visible at the next cycle, and
pops performed during a cycle do not free space until the next cycle.  This
makes simulation results independent of the order in which components are
ticked, which is the property that lets us compose large systems without
worrying about evaluation order (the same property latency-insensitive
ready/valid design gives real hardware).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Generic, Iterable, List, Optional, TypeVar

T = TypeVar("T")

#: Sentinel a :meth:`Component.next_event` may return meaning "I have no
#: self-scheduled future work; only new channel traffic can wake me".
NEVER = float("inf")


class SimulationError(RuntimeError):
    """Raised for illegal channel usage or a wedged simulation."""


class ChannelQueue(Generic[T]):
    """A registered FIFO channel with start-of-cycle visibility semantics.

    ``can_push``/``push`` are the producer interface and ``can_pop``/``peek``/
    ``pop`` the consumer interface.  Capacity admission uses the occupancy at
    the start of the cycle plus anything staged this cycle, so a full queue
    does not accept a push in the same cycle one of its items is popped.
    """

    def __init__(self, capacity: int = 2, name: str = "chan") -> None:
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._items: List[T] = []
        self._staged: List[T] = []
        self._pop_count = 0
        # Statistics, useful for NoC link utilisation reporting.
        self.total_pushed = 0
        self.total_popped = 0
        self.occupancy_accum = 0
        self.cycles_observed = 0

    # -- producer side ----------------------------------------------------
    def can_push(self, n: int = 1) -> bool:
        return len(self._items) + len(self._staged) + n <= self.capacity

    def push(self, item: T) -> None:
        if not self.can_push():
            raise SimulationError(f"push to full channel {self.name!r}")
        self._staged.append(item)
        self.total_pushed += 1

    # -- consumer side -----------------------------------------------------
    def can_pop(self) -> bool:
        return self._pop_count < len(self._items)

    def peek(self, offset: int = 0) -> T:
        # The visible window is [_pop_count, len(_items)): items popped this
        # cycle are already spoken for, items staged this cycle are not yet
        # visible.  A negative offset would reach back into staged pops, so
        # peek enforces the same window ``__len__``/``can_pop`` advertise.
        if offset < 0 or offset >= len(self):
            raise SimulationError(f"peek outside visible window of channel {self.name!r}")
        return self._items[self._pop_count + offset]

    def pop(self) -> T:
        if not self.can_pop():
            raise SimulationError(f"pop from empty channel {self.name!r}")
        item = self._items[self._pop_count]
        self._pop_count += 1
        self.total_popped += 1
        return item

    # -- kernel interface ----------------------------------------------------
    def commit(self) -> None:
        """Apply this cycle's pops and pushes; called once per cycle."""
        self.occupancy_accum += len(self._items)
        self.cycles_observed += 1
        if self._pop_count:
            del self._items[: self._pop_count]
            self._pop_count = 0
        if self._staged:
            self._items.extend(self._staged)
            self._staged.clear()

    def credit_idle_cycles(self, n: int) -> None:
        """Account ``n`` elided commits during a fast-forward.

        Skipped cycles carry no staged traffic, so each elided commit would
        have observed the current occupancy unchanged; crediting them keeps
        ``mean_occupancy`` (and every cycle-normalised statistic built on
        ``cycles_observed``) exactly equal to a naively stepped run.
        """
        self.occupancy_accum += len(self._items) * n
        self.cycles_observed += n

    def register_metrics(self, scope) -> None:
        """Bind this channel's statistics into a metric registry scope.

        The stats themselves stay plain int fields — ``commit`` runs once per
        channel per cycle and is the kernel's hottest statistic — so the
        registry holds lazy views that read the live values at dump time.
        """
        scope.bind("pushed", lambda: self.total_pushed)
        scope.bind("popped", lambda: self.total_popped)
        scope.bind("occupancy_accum", lambda: self.occupancy_accum)
        scope.bind("cycles_observed", lambda: self.cycles_observed)
        scope.bind("mean_occupancy", lambda: self.mean_occupancy)
        scope.bind("capacity", lambda: self.capacity)

    def __len__(self) -> int:
        """Occupancy visible to consumers this cycle."""
        return len(self._items) - self._pop_count

    @property
    def mean_occupancy(self) -> float:
        if not self.cycles_observed:
            return 0.0
        return self.occupancy_accum / self.cycles_observed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChannelQueue({self.name!r}, {len(self._items)}/{self.capacity})"


class Component:
    """Base class for everything that acts on each clock edge."""

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__

    def tick(self, cycle: int) -> None:
        """Advance one cycle; read channel state, stage pushes/pops."""
        raise NotImplementedError

    def next_event(self, cycle: int) -> Optional[float]:
        """Earliest cycle >= ``cycle`` at which this component can make
        progress assuming no new channel traffic arrives, or :data:`NEVER`
        if only channel traffic can wake it, or ``None`` (the safe default)
        for "tick me every cycle".

        The contract backing event-skipping: when a component returns a hint
        ``h``, ticking it at any cycle in ``[cycle, h)`` with every
        registered channel empty must be a no-op (no pushes, no pops, no
        state or statistics change).  Components whose ``tick`` mutates
        state unconditionally (countdowns, pipelines) must either return
        ``None`` or keep their timing in absolute cycles.
        """
        return None

    def channels(self) -> Iterable[ChannelQueue[Any]]:
        """Channels owned by this component (auto-registered)."""
        return [v for v in vars(self).values() if isinstance(v, ChannelQueue)]

    @property
    def metric_path(self) -> str:
        """Namespace path for this component's metrics.

        Component names already encode the design hierarchy with dots
        (``reader.Memcpy.c0.copy_in0``); the default maps them to registry
        paths (``reader/Memcpy/c0/copy_in0``).  Subclasses override to place
        themselves under a subsystem root (``dram/``, ``runtime/``...).
        """
        return self.name.replace(".", "/")

    def register_metrics(self, scope) -> None:
        """Attach/bind this component's metrics under ``scope``.

        Called by :meth:`Simulator.add`; the default registers nothing
        (channel statistics are bound separately by the simulator).
        """


class Simulator:
    """Owns the clock; ticks components and commits channels each cycle.

    With ``fast_forward=True``, :meth:`run` skips over provably dead windows:
    whenever every channel is empty after a commit and every component
    returns a :meth:`Component.next_event` hint, the clock jumps straight to
    the earliest hint, crediting the elided cycles into every channel's
    occupancy statistics so the run stays cycle-identical to naive stepping.
    A single component returning ``None`` (the default) vetoes skipping, so
    unhinted user cores are always safe.
    """

    def __init__(
        self,
        name: str = "sim",
        fast_forward: bool = False,
        tracer: Optional["Tracer"] = None,
        registry=None,
        profile: bool = False,
    ) -> None:
        from repro.obs.registry import MetricRegistry  # lazy: avoid import cycle

        self.name = name
        self.cycle = 0
        self.fast_forward = fast_forward
        self.tracer = tracer
        self._components: List[Component] = []
        self._channels: List[ChannelQueue[Any]] = []
        self._channel_ids = set()
        self._quiescent = False
        # Skip accounting, surfaced by :func:`repro.sim.trace.skip_summary`.
        self.cycles_skipped = 0
        self.skip_events = 0
        # Unified metrics: every added component/channel is adopted here.
        self.registry = registry if registry is not None else MetricRegistry()
        self._bind_own_metrics()
        # Wall-clock self-time profile: component name -> [ns_total, calls].
        self.profile_enabled = profile
        self.tick_profile: Dict[str, List[float]] = {}

    def _bind_own_metrics(self) -> None:
        scope = self.registry.scope("sim")
        scope.bind("cycles_total", lambda: self.cycle)
        # Skip accounting depends on whether fast-forward ran, so it is
        # volatile: excluded from the stable dump the differential
        # naive-vs-fast harness compares bit-for-bit.
        scope.bind("cycles_skipped", lambda: self.cycles_skipped, volatile=True)
        scope.bind(
            "cycles_stepped", lambda: self.cycle - self.cycles_skipped, volatile=True
        )
        scope.bind("skip_events", lambda: self.skip_events, volatile=True)
        if self.tracer is not None:
            tracer = self.tracer
            tscope = self.registry.scope("trace")
            # Event counts are volatile: fast-forward jumps log a trace event
            # per skip, so they legitimately differ from a naive run.
            tscope.bind("events", lambda: len(tracer.events), volatile=True)
            tscope.bind("spans", lambda: len(getattr(tracer, "span_log", ())))
            tscope.bind(
                "dropped_events", lambda: tracer.dropped_events, volatile=True
            )
            tscope.bind("dropped_spans", lambda: tracer.dropped_spans)

    def add(self, component: Component) -> Component:
        self._components.append(component)
        for chan in component.channels():
            self.register_channel(chan)
        component.register_metrics(self.registry.scope(component.metric_path))
        return component

    def register_channel(self, chan: ChannelQueue[Any]) -> ChannelQueue[Any]:
        if id(chan) not in self._channel_ids:
            self._channel_ids.add(id(chan))
            self._channels.append(chan)
            chan.register_metrics(
                self.registry.scope("chan/" + chan.name.replace(".", "/"))
            )
        return chan

    def step(self) -> None:
        if self.profile_enabled:
            return self._step_profiled()
        for component in self._components:
            component.tick(self.cycle)
        quiescent = True
        for chan in self._channels:
            chan.commit()
            if chan._items:
                quiescent = False
        self._quiescent = quiescent
        self.cycle += 1

    def _step_profiled(self) -> None:
        """One cycle with per-component wall-clock attribution.

        Self-time only: each component's tick is timed individually, and the
        channel-commit sweep is booked under ``(kernel)/commit`` so simulator
        overhead is distinguishable from model cost.
        """
        profile = self.tick_profile
        clock = time.perf_counter_ns
        for component in self._components:
            t0 = clock()
            component.tick(self.cycle)
            dt = clock() - t0
            entry = profile.get(component.name)
            if entry is None:
                profile[component.name] = [dt, 1]
            else:
                entry[0] += dt
                entry[1] += 1
        t0 = clock()
        quiescent = True
        for chan in self._channels:
            chan.commit()
            if chan._items:
                quiescent = False
        dt = clock() - t0
        entry = profile.get("(kernel)/commit")
        if entry is None:
            profile["(kernel)/commit"] = [dt, 1]
        else:
            entry[0] += dt
            entry[1] += 1
        self._quiescent = quiescent
        self.cycle += 1

    def run(
        self,
        max_cycles: int,
        until: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run until ``until()`` is true (checked between cycles) or the cycle
        budget is exhausted.  Returns the cycle count reached.  Raises
        :class:`SimulationError` when the budget runs out while a predicate is
        pending, because that almost always means the model deadlocked.

        When fast-forwarding, ``until`` must be a function of model state
        (channel/component contents), not of the raw cycle counter: skipped
        cycles are exactly the ones in which no model state changes, so a
        state predicate is evaluated at every cycle where its value could
        flip — but a predicate on ``sim.cycle`` itself could fire inside a
        skipped window and be missed.
        """
        deadline = self.cycle + max_cycles
        while self.cycle < deadline:
            if until is not None and until():
                return self.cycle
            self.step()
            if (
                self.fast_forward
                and self._quiescent
                and self.cycle < deadline
                # Never skip once the predicate holds: the caller must observe
                # the first satisfying cycle, not some later wake-up.
                and (until is None or not until())
            ):
                self._try_fast_forward(deadline, to_deadline_ok=until is None)
        if until is not None and not until():
            raise SimulationError(
                f"simulation {self.name!r} did not converge in {max_cycles} cycles"
            )
        return self.cycle

    # -- event skipping -----------------------------------------------------
    def _try_fast_forward(self, deadline: int, to_deadline_ok: bool) -> None:
        """Jump to the earliest pending component event, if one is provable."""
        if self.profile_enabled:
            t0 = time.perf_counter_ns()
            try:
                return self._fast_forward_inner(deadline, to_deadline_ok)
            finally:
                dt = time.perf_counter_ns() - t0
                entry = self.tick_profile.get("(kernel)/fast_forward")
                if entry is None:
                    self.tick_profile["(kernel)/fast_forward"] = [dt, 1]
                else:
                    entry[0] += dt
                    entry[1] += 1
        return self._fast_forward_inner(deadline, to_deadline_ok)

    def _fast_forward_inner(self, deadline: int, to_deadline_ok: bool) -> None:
        target = NEVER
        for component in self._components:
            hint = component.next_event(self.cycle)
            if hint is None:
                return  # unhinted component: must tick every cycle
            if hint < target:
                target = hint
        if target == NEVER:
            # Nothing self-scheduled anywhere.  With no predicate pending the
            # remaining cycles are provably dead, so jump to the deadline;
            # with a predicate we keep naive stepping (the budget-exhausted
            # error path must observe the same cycles it would naively).
            if not to_deadline_ok:
                return
            target = deadline
        target = min(int(target), deadline)
        if target <= self.cycle:
            return
        skipped = target - self.cycle
        for chan in self._channels:
            chan.credit_idle_cycles(skipped)
        self.cycles_skipped += skipped
        self.skip_events += 1
        if self.tracer is not None:
            self.tracer.record(self.cycle, "sim", "fast_forward", skipped)
        self.cycle = target
