"""Deterministic cycle-level simulation kernel.

The kernel models synchronous hardware as a set of :class:`Component` objects
exchanging tokens over registered :class:`ChannelQueue` channels.  Every
channel behaves like a FIFO whose occupancy is sampled at the start of the
cycle: pushes performed during a cycle become visible at the next cycle, and
pops performed during a cycle do not free space until the next cycle.  This
makes simulation results independent of the order in which components are
ticked, which is the property that lets us compose large systems without
worrying about evaluation order (the same property latency-insensitive
ready/valid design gives real hardware).
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Iterable, List, Optional, TypeVar

T = TypeVar("T")


class SimulationError(RuntimeError):
    """Raised for illegal channel usage or a wedged simulation."""


class ChannelQueue(Generic[T]):
    """A registered FIFO channel with start-of-cycle visibility semantics.

    ``can_push``/``push`` are the producer interface and ``can_pop``/``peek``/
    ``pop`` the consumer interface.  Capacity admission uses the occupancy at
    the start of the cycle plus anything staged this cycle, so a full queue
    does not accept a push in the same cycle one of its items is popped.
    """

    def __init__(self, capacity: int = 2, name: str = "chan") -> None:
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._items: List[T] = []
        self._staged: List[T] = []
        self._pop_count = 0
        # Statistics, useful for NoC link utilisation reporting.
        self.total_pushed = 0
        self.total_popped = 0
        self.occupancy_accum = 0
        self.cycles_observed = 0

    # -- producer side ----------------------------------------------------
    def can_push(self, n: int = 1) -> bool:
        return len(self._items) + len(self._staged) + n <= self.capacity

    def push(self, item: T) -> None:
        if not self.can_push():
            raise SimulationError(f"push to full channel {self.name!r}")
        self._staged.append(item)
        self.total_pushed += 1

    # -- consumer side -----------------------------------------------------
    def can_pop(self) -> bool:
        return self._pop_count < len(self._items)

    def peek(self, offset: int = 0) -> T:
        idx = self._pop_count + offset
        if idx >= len(self._items):
            raise SimulationError(f"peek past end of channel {self.name!r}")
        return self._items[idx]

    def pop(self) -> T:
        if not self.can_pop():
            raise SimulationError(f"pop from empty channel {self.name!r}")
        item = self._items[self._pop_count]
        self._pop_count += 1
        self.total_popped += 1
        return item

    # -- kernel interface ----------------------------------------------------
    def commit(self) -> None:
        """Apply this cycle's pops and pushes; called once per cycle."""
        self.occupancy_accum += len(self._items)
        self.cycles_observed += 1
        if self._pop_count:
            del self._items[: self._pop_count]
            self._pop_count = 0
        if self._staged:
            self._items.extend(self._staged)
            self._staged.clear()

    def __len__(self) -> int:
        """Occupancy visible to consumers this cycle."""
        return len(self._items) - self._pop_count

    @property
    def mean_occupancy(self) -> float:
        if not self.cycles_observed:
            return 0.0
        return self.occupancy_accum / self.cycles_observed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChannelQueue({self.name!r}, {len(self._items)}/{self.capacity})"


class Component:
    """Base class for everything that acts on each clock edge."""

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__

    def tick(self, cycle: int) -> None:
        """Advance one cycle; read channel state, stage pushes/pops."""
        raise NotImplementedError

    def channels(self) -> Iterable[ChannelQueue[Any]]:
        """Channels owned by this component (auto-registered)."""
        return [v for v in vars(self).values() if isinstance(v, ChannelQueue)]


class Simulator:
    """Owns the clock; ticks components and commits channels each cycle."""

    def __init__(self, name: str = "sim") -> None:
        self.name = name
        self.cycle = 0
        self._components: List[Component] = []
        self._channels: List[ChannelQueue[Any]] = []
        self._channel_ids = set()

    def add(self, component: Component) -> Component:
        self._components.append(component)
        for chan in component.channels():
            self.register_channel(chan)
        return component

    def register_channel(self, chan: ChannelQueue[Any]) -> ChannelQueue[Any]:
        if id(chan) not in self._channel_ids:
            self._channel_ids.add(id(chan))
            self._channels.append(chan)
        return chan

    def step(self) -> None:
        for component in self._components:
            component.tick(self.cycle)
        for chan in self._channels:
            chan.commit()
        self.cycle += 1

    def run(
        self,
        max_cycles: int,
        until: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run until ``until()`` is true (checked between cycles) or the cycle
        budget is exhausted.  Returns the cycle count reached.  Raises
        :class:`SimulationError` when the budget runs out while a predicate is
        pending, because that almost always means the model deadlocked.
        """
        deadline = self.cycle + max_cycles
        while self.cycle < deadline:
            if until is not None and until():
                return self.cycle
            self.step()
        if until is not None and not until():
            raise SimulationError(
                f"simulation {self.name!r} did not converge in {max_cycles} cycles"
            )
        return self.cycle
