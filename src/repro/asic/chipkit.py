"""ChipKIT-style ASIC top-level integration.

ChipKIT test chips host an on-chip ARM Cortex-M0 that plays the role the PCIe
host plays on FPGA targets.  The M0 core itself is ARM-licensed and cannot be
redistributed, so — exactly as the paper does — we require the developer to
*supply a path* to their licensed M0 source, and Beethoven performs the rest
of the integration: it instantiates the CPU in the generated top level and
wires it to the Beethoven command fabric and memory ports.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.hdl.ir import HdlModule


class MissingCpuSourceError(FileNotFoundError):
    """Raised when the licensed ARM M0 source path is absent."""


@dataclass(frozen=True)
class ChipKitIntegration:
    """Parameters for a ChipKIT-style test chip build."""

    m0_source_path: str
    sram_boot_kib: int = 64

    def validate(self) -> None:
        if not self.m0_source_path:
            raise MissingCpuSourceError(
                "ChipKIT integration needs a path to the licensed ARM M0 source "
                "(Beethoven cannot redistribute it)"
            )
        if not os.path.exists(self.m0_source_path):
            raise MissingCpuSourceError(
                f"ARM M0 source not found at {self.m0_source_path!r}"
            )

    def build_top(self, fabric_top: HdlModule) -> HdlModule:
        """Wrap the Beethoven fabric with the on-chip CPU and boot SRAM."""
        self.validate()
        top = HdlModule(
            "chipkit_top",
            doc=(
                "ChipKIT-style test chip: on-chip ARM M0 host connected "
                "directly to the Beethoven command/memory fabric "
                f"(CPU source: {self.m0_source_path})"
            ),
        )
        top.add_port("clk", "input")
        top.add_port("rst_n", "input")
        top.add_port("uart_tx", "output")
        top.add_port("uart_rx", "input")
        cpu = HdlModule(
            "arm_cortex_m0",
            doc="Licensed ARM Cortex-M0 (user-supplied source, not emitted)",
        )
        cpu.add_port("clk", "input")
        cpu.add_port("rst_n", "input")
        cpu.add_port("mmio_cmd", "output", 32)
        cpu.add_port("mmio_resp", "input", 32)
        top.add_net("mmio_cmd_w", 32)
        top.add_net("mmio_resp_w", 32)
        top.instantiate(
            cpu,
            "u_cpu",
            {"clk": "clk", "rst_n": "rst_n", "mmio_cmd": "mmio_cmd_w", "mmio_resp": "mmio_resp_w"},
        )
        top.instantiate(fabric_top, "u_beethoven", {})
        return top
