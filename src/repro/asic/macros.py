"""SRAM macro libraries and the cascading/banking memory compiler.

ASIC toolchains require SRAM cells to be instantiated by hand from a fixed
menu of foundry macros.  Beethoven provides "a memory compiler-like utility
that cascades and banks the SRAM cells available in the technology library to
produce the memory requested by the developer" (Section II-D).  This module
is that utility: given a requested width x depth x ports, it picks a macro
and computes the lane (width cascade) and bank (depth cascade) arrangement
with minimum area, including the mux/decode overhead of banking.

Macro menus are modelled on the public ASAP7 SRAM generators and the Synopsys
educational PDK: sizes and areas are representative, not sign-off numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class SramMacro:
    """One foundry SRAM macro."""

    name: str
    width_bits: int
    depth: int
    n_rw_ports: int
    area_um2: float

    @property
    def bits(self) -> int:
        return self.width_bits * self.depth


#: ASAP7-style single- and dual-port macro menu.
ASAP7_MACROS: Sequence[SramMacro] = (
    SramMacro("asap7_sram_1rw_32x64", 32, 64, 1, 580.0),
    SramMacro("asap7_sram_1rw_32x128", 32, 128, 1, 1_020.0),
    SramMacro("asap7_sram_1rw_64x256", 64, 256, 1, 3_600.0),
    SramMacro("asap7_sram_1rw_64x512", 64, 512, 1, 6_700.0),
    SramMacro("asap7_sram_1rw_72x1024", 72, 1024, 1, 14_500.0),
    SramMacro("asap7_sram_2rw_32x128", 32, 128, 2, 1_900.0),
    SramMacro("asap7_sram_2rw_64x256", 64, 256, 2, 6_500.0),
    SramMacro("asap7_sram_2rw_64x512", 64, 512, 2, 12_100.0),
)

#: Synopsys educational PDK (SAED-style) macro menu.
SAED_MACROS: Sequence[SramMacro] = (
    SramMacro("saed_sram_1rw_16x64", 16, 64, 1, 2_400.0),
    SramMacro("saed_sram_1rw_32x256", 32, 256, 1, 9_800.0),
    SramMacro("saed_sram_1rw_64x512", 64, 512, 1, 33_000.0),
    SramMacro("saed_sram_2rw_32x128", 32, 128, 2, 11_000.0),
)


@dataclass(frozen=True)
class MacroPlan:
    """How a requested memory maps onto macros."""

    macro: SramMacro
    lanes: int  # width cascade
    banks: int  # depth cascade
    requested_bits: int

    @property
    def n_macros(self) -> int:
        return self.lanes * self.banks

    @property
    def total_bits(self) -> int:
        return self.n_macros * self.macro.bits

    @property
    def area_um2(self) -> float:
        # Bank decode/mux overhead grows with the bank count.
        overhead = 1.0 + 0.02 * max(self.banks - 1, 0)
        return self.n_macros * self.macro.area_um2 * overhead

    @property
    def efficiency(self) -> float:
        return self.requested_bits / self.total_bits


class MemoryCompilerError(ValueError):
    pass


class MemoryCompiler:
    """Selects the minimum-area macro arrangement for a request."""

    def __init__(self, macros: Sequence[SramMacro] = ASAP7_MACROS) -> None:
        if not macros:
            raise MemoryCompilerError("empty macro library")
        self.macros = list(macros)

    def compile(self, width_bits: int, depth: int, n_rw_ports: int = 1) -> MacroPlan:
        if width_bits < 1 or depth < 1:
            raise MemoryCompilerError("width and depth must be positive")
        best: Optional[MacroPlan] = None
        for macro in self.macros:
            if macro.n_rw_ports < n_rw_ports:
                continue
            lanes = -(-width_bits // macro.width_bits)
            banks = -(-depth // macro.depth)
            plan = MacroPlan(macro, lanes, banks, width_bits * depth)
            if best is None or plan.area_um2 < best.area_um2:
                best = plan
        if best is None:
            raise MemoryCompilerError(
                f"no macro in the library offers {n_rw_ports} ports"
            )
        return best

    def compile_all(self, requests) -> List[MacroPlan]:
        return [self.compile(*req) for req in requests]
