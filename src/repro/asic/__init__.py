"""ASIC backend: SRAM macro libraries, memory compiler, ChipKIT tops."""

from repro.asic.chipkit import ChipKitIntegration, MissingCpuSourceError
from repro.asic.macros import (
    ASAP7_MACROS,
    MacroPlan,
    MemoryCompiler,
    MemoryCompilerError,
    SAED_MACROS,
    SramMacro,
)

__all__ = [
    "ChipKitIntegration",
    "MissingCpuSourceError",
    "ASAP7_MACROS",
    "SAED_MACROS",
    "MacroPlan",
    "MemoryCompiler",
    "MemoryCompilerError",
    "SramMacro",
]
