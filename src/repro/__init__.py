"""repro — a pure-Python reproduction of Beethoven (ISPASS 2025).

Beethoven composes heterogeneous multi-core accelerator SoCs: the user writes
per-core logic against Reader/Writer/Scratchpad and command abstractions, and
the framework generates the memory subsystem, the SLR-aware on-chip networks,
the host software bindings and the runtime.  This package rebuilds that whole
stack on a cycle-level simulation substrate.

Public API highlights (see README for a tour):

* :mod:`repro.core` — ``AcceleratorCore``, ``AcceleratorConfig``,
  ``BeethovenBuild`` and friends (the paper's Figures 2 and 3).
* :mod:`repro.memory` — ``Reader``, ``Writer``, ``Scratchpad``.
* :mod:`repro.runtime` — ``FpgaHandle``, ``RemotePtr``, ``ResponseHandle``.
* :mod:`repro.platforms` — ``AWSF1Platform``, ``KriaPlatform``, ASIC and
  simulation platforms.
"""

__version__ = "1.0.0"
