"""Link adapters so NoC nodes can drive monitored and plain ports alike.

The memory controller sits behind a :class:`~repro.axi.MonitoredAxiPort` (the
protocol checker), while interior tree links are plain ports.  Both expose the
same push interface through these adapters.
"""

from __future__ import annotations

from repro.axi.monitor import MonitoredAxiPort
from repro.axi.types import ARReq, AWReq, AxiPort, BResp, RBeat, WBeat


class PlainAxiLink:
    """Master-side pushes onto an unmonitored :class:`AxiPort`."""

    def __init__(self, port: AxiPort) -> None:
        self.port = port

    def push_ar(self, cycle: int, req: ARReq) -> None:
        self.port.params.check_burst(req.addr, req.length)
        self.port.ar.push(req)

    def push_aw(self, cycle: int, req: AWReq) -> None:
        self.port.params.check_burst(req.addr, req.length)
        self.port.aw.push(req)

    def push_w(self, cycle: int, beat: WBeat) -> None:
        self.port.w.push(beat)

    def push_r(self, cycle: int, beat: RBeat) -> None:
        self.port.r.push(beat)

    def push_b(self, cycle: int, resp: BResp) -> None:
        self.port.b.push(resp)


def as_link(target) -> "PlainAxiLink | MonitoredAxiPort":
    """Normalise an AxiPort / MonitoredAxiPort / link into a link."""
    if isinstance(target, (PlainAxiLink, MonitoredAxiPort)):
        return target
    if isinstance(target, AxiPort):
        return PlainAxiLink(target)
    raise TypeError(f"cannot adapt {target!r} into an AXI link")
