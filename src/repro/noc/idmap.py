"""ID-space compression at the network root.

A composed tree gives every master a unique wide ID, but the external memory
controller supports a fixed, small ID space (the AWS F1 shell exposes a
handful of ID bits).  The compressor statically folds wide IDs onto the
controller's ID space (``wide_id % n_ids``, the scheme AXI SmartConnect-style
bridges use): transactions sharing a wide ID still share a narrow ID, so the
AXI per-ID ordering guarantee is preserved end-to-end, while unrelated masters
that collide on a narrow ID get (correctly) serialised — a real cost of
limited ID space that the model therefore reproduces.  Responses are routed
back by transaction tag.
"""

from __future__ import annotations

from typing import Dict

from repro.axi.types import ARReq, AWReq, AxiPort, BResp, RBeat
from repro.noc.links import as_link
from repro.sim import NEVER, Component, SimulationError


class IdCompressor(Component):
    """Folds a wide upstream ID space onto the controller's narrow one."""

    def __init__(self, upstream: AxiPort, downstream, name: str = "idmap") -> None:
        super().__init__(name)
        self.up = upstream
        self.down = as_link(downstream)
        self.n_ids = self.down.port.params.n_ids
        self._read_orig: Dict[int, int] = {}  # tag -> original wide id
        self._write_orig: Dict[int, int] = {}
        self.collisions = 0
        self._narrow_in_use: Dict[int, set] = {}

    def _fold(self, wide_id: int, live: Dict[int, set]) -> int:
        narrow = wide_id % self.n_ids
        users = live.setdefault(narrow, set())
        if users and wide_id not in users:
            self.collisions += 1
        users.add(wide_id)
        return narrow

    def next_event(self, cycle: int) -> float:
        return NEVER  # purely reactive: every action pops a channel item

    def wake_channels(self):
        # Forwards between the two port faces, neither of which it owns.
        return list(self.up.channels()) + list(self.down.port.channels())

    def tick(self, cycle: int) -> None:
        if self.up.ar.can_pop() and self.down.port.ar.can_push():
            req = self.up.ar.pop()
            narrow = self._fold(req.axi_id, self._narrow_in_use)
            self._read_orig[req.tag] = req.axi_id
            self.down.push_ar(cycle, ARReq(narrow, req.addr, req.length, req.tag))
        if self.up.aw.can_pop() and self.down.port.aw.can_push():
            req = self.up.aw.pop()
            narrow = req.axi_id % self.n_ids
            self._write_orig[req.tag] = req.axi_id
            self.down.push_aw(cycle, AWReq(narrow, req.addr, req.length, req.tag))
        if self.up.w.can_pop() and self.down.port.w.can_push():
            self.down.push_w(cycle, self.up.w.pop())
        if self.down.port.r.can_pop() and self.up.r.can_push():
            beat: RBeat = self.down.port.r.pop()
            orig = self._read_orig.get(beat.tag)
            if orig is None:
                raise SimulationError(f"{self.name}: R beat with unknown tag {beat.tag}")
            self.up.r.push(RBeat(orig, beat.data, beat.last, beat.tag, beat.err))
            if beat.last:
                del self._read_orig[beat.tag]
        if self.down.port.b.can_pop() and self.up.b.can_push():
            resp: BResp = self.down.port.b.pop()
            orig = self._write_orig.pop(resp.tag, None)
            if orig is None:
                raise SimulationError(f"{self.name}: B resp with unknown tag {resp.tag}")
            self.up.b.push(BResp(orig, resp.okay, resp.tag))
