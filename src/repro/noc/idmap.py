"""ID-space compression at the network root.

A composed tree gives every master a unique wide ID, but the external memory
controller supports a fixed, small ID space (the AWS F1 shell exposes a
handful of ID bits).  The compressor statically folds wide IDs onto the
controller's ID space (``wide_id % n_ids``, the scheme AXI SmartConnect-style
bridges use): transactions sharing a wide ID still share a narrow ID, so the
AXI per-ID ordering guarantee is preserved end-to-end, while unrelated masters
that collide on a narrow ID get (correctly) serialised — a real cost of
limited ID space that the model therefore reproduces.  Responses are routed
back by transaction tag.
"""

from __future__ import annotations

from typing import Dict

from repro.axi.types import ARReq, AWReq, AxiPort, BResp, RBeat
from repro.noc.links import as_link
from repro.sim import NEVER, Component, SimulationError


class IdCompressor(Component):
    """Folds a wide upstream ID space onto the controller's narrow one."""

    def __init__(self, upstream: AxiPort, downstream, name: str = "idmap") -> None:
        super().__init__(name)
        self.up = upstream
        self.down = as_link(downstream)
        self.n_ids = self.down.port.params.n_ids
        self._read_orig: Dict[int, int] = {}  # tag -> original wide id
        self._write_orig: Dict[int, int] = {}
        self.collisions = 0
        self._narrow_in_use: Dict[int, set] = {}

    def _fold(self, wide_id: int, live: Dict[int, set]) -> int:
        narrow = wide_id % self.n_ids
        users = live.setdefault(narrow, set())
        if users and wide_id not in users:
            self.collisions += 1
        users.add(wide_id)
        return narrow

    def next_event(self, cycle: int) -> float:
        return NEVER  # purely reactive: every action pops a channel item

    #: Constant-NEVER hint — lets the compiled scheduler skip the hint call.
    wake_only = True

    def wake_channels(self):
        # Forwards between the two port faces, neither of which it owns.
        return list(self.up.channels()) + list(self.down.port.channels())

    def compile_tick(self):
        """Specialised tick: the five forwarding lanes with endpoints bound
        and the can-pop/can-push guards inlined."""
        up = self.up
        down = self.down
        d = down.port
        u_ar, u_aw, u_w, u_r, u_b = up.ar, up.aw, up.w, up.r, up.b
        d_ar, d_aw, d_w, d_r, d_b = d.ar, d.aw, d.w, d.r, d.b
        push_ar, push_aw, push_w = down.push_ar, down.push_aw, down.push_w
        n_ids = self.n_ids
        read_orig = self._read_orig
        write_orig = self._write_orig
        fold = self._fold
        live = self._narrow_in_use
        name = self.name

        def tick(cycle):
            if u_ar._pop_count < len(u_ar._items) and (
                len(d_ar._items) + len(d_ar._staged) < d_ar.capacity
            ):
                req = u_ar.pop()
                narrow = fold(req.axi_id, live)
                read_orig[req.tag] = req.axi_id
                push_ar(cycle, ARReq(narrow, req.addr, req.length, req.tag))
            if u_aw._pop_count < len(u_aw._items) and (
                len(d_aw._items) + len(d_aw._staged) < d_aw.capacity
            ):
                req = u_aw.pop()
                write_orig[req.tag] = req.axi_id
                push_aw(cycle, AWReq(req.axi_id % n_ids, req.addr, req.length, req.tag))
            if u_w._pop_count < len(u_w._items) and (
                len(d_w._items) + len(d_w._staged) < d_w.capacity
            ):
                push_w(cycle, u_w.pop())
            if d_r._pop_count < len(d_r._items) and (
                len(u_r._items) + len(u_r._staged) < u_r.capacity
            ):
                beat = d_r.pop()
                orig = read_orig.get(beat.tag)
                if orig is None:
                    raise SimulationError(
                        f"{name}: R beat with unknown tag {beat.tag}"
                    )
                u_r.push(RBeat(orig, beat.data, beat.last, beat.tag, beat.err))
                if beat.last:
                    del read_orig[beat.tag]
            if d_b._pop_count < len(d_b._items) and (
                len(u_b._items) + len(u_b._staged) < u_b.capacity
            ):
                resp = d_b.pop()
                orig = write_orig.pop(resp.tag, None)
                if orig is None:
                    raise SimulationError(
                        f"{name}: B resp with unknown tag {resp.tag}"
                    )
                u_b.push(BResp(orig, resp.okay, resp.tag))

        return tick

    def tick(self, cycle: int) -> None:
        if self.up.ar.can_pop() and self.down.port.ar.can_push():
            req = self.up.ar.pop()
            narrow = self._fold(req.axi_id, self._narrow_in_use)
            self._read_orig[req.tag] = req.axi_id
            self.down.push_ar(cycle, ARReq(narrow, req.addr, req.length, req.tag))
        if self.up.aw.can_pop() and self.down.port.aw.can_push():
            req = self.up.aw.pop()
            narrow = req.axi_id % self.n_ids
            self._write_orig[req.tag] = req.axi_id
            self.down.push_aw(cycle, AWReq(narrow, req.addr, req.length, req.tag))
        if self.up.w.can_pop() and self.down.port.w.can_push():
            self.down.push_w(cycle, self.up.w.pop())
        if self.down.port.r.can_pop() and self.up.r.can_push():
            beat: RBeat = self.down.port.r.pop()
            orig = self._read_orig.get(beat.tag)
            if orig is None:
                raise SimulationError(f"{self.name}: R beat with unknown tag {beat.tag}")
            self.up.r.push(RBeat(orig, beat.data, beat.last, beat.tag, beat.err))
            if beat.last:
                del self._read_orig[beat.tag]
        if self.down.port.b.can_pop() and self.up.b.can_push():
            resp: BResp = self.down.port.b.pop()
            orig = self._write_orig.pop(resp.tag, None)
            if orig is None:
                raise SimulationError(f"{self.name}: B resp with unknown tag {resp.tag}")
            self.up.b.push(BResp(orig, resp.okay, resp.tag))
