"""Generated on-chip networks: buffer trees, SLR bridges, ID compression."""

from repro.noc.axi_node import AxiBufferNode, AxiPipe, bits_for
from repro.noc.idmap import IdCompressor
from repro.noc.links import PlainAxiLink, as_link
from repro.noc.tree import BuiltNetwork, TreeBuilder, TreeConfig

__all__ = [
    "AxiBufferNode",
    "AxiPipe",
    "IdCompressor",
    "PlainAxiLink",
    "as_link",
    "bits_for",
    "BuiltNetwork",
    "TreeBuilder",
    "TreeConfig",
]
