"""AXI interconnect nodes: arbitration/buffer nodes and pipeline stages.

Beethoven's generated memory network is a tree whose internal nodes are
buffers (Section II-B, Multi-Die Designs).  :class:`AxiBufferNode` is one such
node: it multiplexes N upstream masters onto one downstream port with
round-robin arbitration and ID remapping (upstream index bits are appended
above the master's own ID bits, the standard crossbar technique), and routes
responses back by stripping those bits.  :class:`AxiPipe` is a fixed-latency
register slice used for expensive links such as SLR crossings.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro.axi.types import ARReq, AWReq, AxiPort, BResp, RBeat
from repro.noc.links import as_link
from repro.sim import NEVER, Component, SimulationError


def bits_for(n: int) -> int:
    """Bits needed to number ``n`` distinct upstreams (0 for a single one)."""
    if n <= 1:
        return 0
    return (n - 1).bit_length()


class AxiBufferNode(Component):
    """N-to-1 AXI mux with per-channel round-robin arbitration.

    ``child_id_bits`` is the ID width upstream masters use; remapped IDs are
    ``(upstream_index << child_id_bits) | upstream_id``.  The downstream port's
    parameterisation must have room for the extra bits — the elaborator checks
    this when it sizes the tree.
    """

    # Optional fault injector (repro.faults): filters R beats (corrupt/drop)
    # and B responses (drop) at this hop.  Class attribute so existing
    # constructions need no changes; a compiled FaultPlan installs instances.
    _fault = None

    def __init__(
        self,
        upstreams: List[AxiPort],
        downstream,
        child_id_bits: int,
        name: str = "axinode",
    ) -> None:
        super().__init__(name)
        if not upstreams:
            raise ValueError("buffer node needs at least one upstream")
        self.upstreams = upstreams
        self.down = as_link(downstream)
        self.child_id_bits = child_id_bits
        self.index_bits = bits_for(len(upstreams))
        total = child_id_bits + self.index_bits
        if total > self.down.port.params.id_bits:
            raise SimulationError(
                f"{name}: needs {total} ID bits downstream, "
                f"only {self.down.port.params.id_bits} available"
            )
        self._ar_rr = 0
        self._aw_rr = 0
        # (upstream_index, beats_remaining) in downstream AW order: AXI4 write
        # data may not interleave, so W is locked to this order.
        self._w_order: Deque[Tuple[int, int]] = deque()
        # Per-upstream count of outstanding W bursts already granted, so we
        # never forward an AW whose W data could deadlock the lock queue.
        self.forwarded = {"ar": 0, "aw": 0, "w": 0, "r": 0, "b": 0}
        # Contention accounting (repro.obs.attribution): cycles each channel
        # spent with an item ready to forward but the receiving side full.
        # ``_stall_since[ch] >= 0`` marks an open stall window; the window is
        # closed (and accrued) at the first tick the blocked side has room
        # again.  Stall windows only open while the blocking channels are
        # non-empty, so every open/close tick is executed under all four
        # scheduling modes and the counters are mode-identical.
        self.stall_cycles = {"ar": 0, "aw": 0, "w": 0, "r": 0, "b": 0}
        self._stall_since = {"ar": -1, "aw": -1, "w": -1, "r": -1, "b": -1}

    @property
    def metric_path(self) -> str:
        return "noc/" + self.name.replace(".", "/")

    def register_metrics(self, scope) -> None:
        for ch in ("ar", "aw", "w", "r", "b"):
            scope.bind(f"forwarded_{ch}", lambda ch=ch: self.forwarded[ch])
            scope.bind(f"stall_{ch}_cycles", lambda ch=ch: self.stall_cycles[ch])
        scope.bind("upstreams", lambda: len(self.upstreams))

    # -- ID remapping -------------------------------------------------------
    def _remap(self, up_idx: int, axi_id: int) -> int:
        return (up_idx << self.child_id_bits) | axi_id

    def _unmap(self, axi_id: int) -> Tuple[int, int]:
        return axi_id >> self.child_id_bits, axi_id & ((1 << self.child_id_bits) - 1)

    # -- tick ---------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        self._forward_ar(cycle)
        self._forward_aw(cycle)
        self._forward_w(cycle)
        self._route_r(cycle)
        self._route_b(cycle)

    def _forward_ar(self, cycle: int) -> None:
        if not self.down.port.ar.can_push():
            if self._stall_since["ar"] < 0 and any(
                up.ar.can_pop() for up in self.upstreams
            ):
                self._stall_since["ar"] = cycle
            return
        if self._stall_since["ar"] >= 0:
            self.stall_cycles["ar"] += cycle - self._stall_since["ar"]
            self._stall_since["ar"] = -1
        n = len(self.upstreams)
        for k in range(n):
            idx = (self._ar_rr + k) % n
            up = self.upstreams[idx]
            if up.ar.can_pop():
                req = up.ar.pop()
                self.down.push_ar(
                    cycle,
                    ARReq(self._remap(idx, req.axi_id), req.addr, req.length, req.tag),
                )
                self._ar_rr = (idx + 1) % n
                self.forwarded["ar"] += 1
                return

    def _forward_aw(self, cycle: int) -> None:
        if not self.down.port.aw.can_push():
            if self._stall_since["aw"] < 0 and any(
                up.aw.can_pop() for up in self.upstreams
            ):
                self._stall_since["aw"] = cycle
            return
        if self._stall_since["aw"] >= 0:
            self.stall_cycles["aw"] += cycle - self._stall_since["aw"]
            self._stall_since["aw"] = -1
        n = len(self.upstreams)
        for k in range(n):
            idx = (self._aw_rr + k) % n
            up = self.upstreams[idx]
            if up.aw.can_pop():
                req = up.aw.pop()
                self.down.push_aw(
                    cycle,
                    AWReq(self._remap(idx, req.axi_id), req.addr, req.length, req.tag),
                )
                self._w_order.append((idx, req.length))
                self._aw_rr = (idx + 1) % n
                self.forwarded["aw"] += 1
                return

    def _forward_w(self, cycle: int) -> None:
        if not self._w_order:
            return
        idx, remaining = self._w_order[0]
        up = self.upstreams[idx]
        if not self.down.port.w.can_push():
            if self._stall_since["w"] < 0 and up.w.can_pop():
                self._stall_since["w"] = cycle
            return
        if self._stall_since["w"] >= 0:
            self.stall_cycles["w"] += cycle - self._stall_since["w"]
            self._stall_since["w"] = -1
        if not up.w.can_pop():
            return
        beat = up.w.pop()
        self.down.push_w(cycle, beat)
        remaining -= 1
        self.forwarded["w"] += 1
        if beat.last:
            if remaining != 0:
                raise SimulationError(f"{self.name}: W burst length mismatch")
            self._w_order.popleft()
        else:
            self._w_order[0] = (idx, remaining)

    def _route_r(self, cycle: int) -> None:
        down_r = self.down.port.r
        if not down_r.can_pop():
            return
        beat: RBeat = down_r.peek()
        idx, local_id = self._unmap(beat.axi_id)
        if idx >= len(self.upstreams):
            raise SimulationError(f"{self.name}: R beat for unknown upstream {idx}")
        up = self.upstreams[idx]
        if not up.r.can_push():
            if self._stall_since["r"] < 0:
                self._stall_since["r"] = cycle
            return
        if self._stall_since["r"] >= 0:
            self.stall_cycles["r"] += cycle - self._stall_since["r"]
            self._stall_since["r"] = -1
        down_r.pop()
        data, err = beat.data, beat.err
        hook = self._fault
        if hook is not None:
            verdict, data, err = hook.filter_r(cycle, beat)
            if verdict == "drop":
                return  # beat lost on the link; the burst can never complete
        up.r.push(RBeat(local_id, data, beat.last, beat.tag, err))
        self.forwarded["r"] += 1

    def _route_b(self, cycle: int) -> None:
        down_b = self.down.port.b
        if not down_b.can_pop():
            return
        resp: BResp = down_b.peek()
        idx, local_id = self._unmap(resp.axi_id)
        if idx >= len(self.upstreams):
            raise SimulationError(f"{self.name}: B resp for unknown upstream {idx}")
        up = self.upstreams[idx]
        if not up.b.can_push():
            if self._stall_since["b"] < 0:
                self._stall_since["b"] = cycle
            return
        if self._stall_since["b"] >= 0:
            self.stall_cycles["b"] += cycle - self._stall_since["b"]
            self._stall_since["b"] = -1
        down_b.pop()
        hook = self._fault
        if hook is not None and hook.drop_b(cycle, resp):
            return  # response lost; the writer stalls and the watchdog fires
        up.b.push(BResp(local_id, resp.okay, resp.tag))
        self.forwarded["b"] += 1

    def next_event(self, cycle: int) -> float:
        # Purely reactive: every action pops a visible channel item, so with
        # all channels empty the node provably does nothing.
        return NEVER

    #: Constant-NEVER hint — lets the compiled scheduler skip the hint call.
    wake_only = True

    def channels(self):
        return []  # ports are registered by the builder

    def wake_channels(self):
        # Reacts to requests arriving on any upstream port and to response
        # beats (or freed space) on the downstream port.
        chans = []
        for up in self.upstreams:
            chans.extend(up.channels())
        chans.extend(self.down.port.channels())
        return chans

    # -- compiled tick -------------------------------------------------------
    def compile_tick(self):
        """Specialised tick: same phases and arbitration decisions as
        :meth:`tick` with channel endpoints, round-robin order and ID
        remapping constants resolved at compile time."""
        ups = self.upstreams
        n = len(ups)
        up_ar = [u.ar for u in ups]
        up_aw = [u.aw for u in ups]
        up_w = [u.w for u in ups]
        up_r = [u.r for u in ups]
        up_b = [u.b for u in ups]
        down = self.down
        d = down.port
        d_ar, d_aw, d_w, d_r, d_b = d.ar, d.aw, d.w, d.r, d.b
        push_ar, push_aw, push_w = down.push_ar, down.push_aw, down.push_w
        child_bits = self.child_id_bits
        child_mask = (1 << child_bits) - 1
        w_order = self._w_order
        forwarded = self.forwarded
        stall_cycles = self.stall_cycles
        stall_since = self._stall_since
        name = self.name

        def tick(cycle, self=self):
            # -- AR arbitration -------------------------------------------
            if len(d_ar._items) + len(d_ar._staged) < d_ar.capacity:
                since = stall_since["ar"]
                if since >= 0:
                    stall_cycles["ar"] += cycle - since
                    stall_since["ar"] = -1
                rr = self._ar_rr
                for k in range(n):
                    idx = rr + k
                    if idx >= n:
                        idx -= n
                    chan = up_ar[idx]
                    if chan._pop_count < len(chan._items):
                        req = chan.pop()
                        push_ar(
                            cycle,
                            ARReq(
                                (idx << child_bits) | req.axi_id,
                                req.addr,
                                req.length,
                                req.tag,
                            ),
                        )
                        idx += 1
                        self._ar_rr = idx if idx < n else 0
                        forwarded["ar"] += 1
                        break
            elif stall_since["ar"] < 0:
                for chan in up_ar:
                    if chan._pop_count < len(chan._items):
                        stall_since["ar"] = cycle
                        break
            # -- AW arbitration -------------------------------------------
            if len(d_aw._items) + len(d_aw._staged) < d_aw.capacity:
                since = stall_since["aw"]
                if since >= 0:
                    stall_cycles["aw"] += cycle - since
                    stall_since["aw"] = -1
                rr = self._aw_rr
                for k in range(n):
                    idx = rr + k
                    if idx >= n:
                        idx -= n
                    chan = up_aw[idx]
                    if chan._pop_count < len(chan._items):
                        req = chan.pop()
                        push_aw(
                            cycle,
                            AWReq(
                                (idx << child_bits) | req.axi_id,
                                req.addr,
                                req.length,
                                req.tag,
                            ),
                        )
                        w_order.append((idx, req.length))
                        idx += 1
                        self._aw_rr = idx if idx < n else 0
                        forwarded["aw"] += 1
                        break
            elif stall_since["aw"] < 0:
                for chan in up_aw:
                    if chan._pop_count < len(chan._items):
                        stall_since["aw"] = cycle
                        break
            # -- W streaming (locked to AW order) -------------------------
            if w_order:
                idx, remaining = w_order[0]
                chan = up_w[idx]
                if len(d_w._items) + len(d_w._staged) < d_w.capacity:
                    since = stall_since["w"]
                    if since >= 0:
                        stall_cycles["w"] += cycle - since
                        stall_since["w"] = -1
                    if chan._pop_count < len(chan._items):
                        beat = chan.pop()
                        push_w(cycle, beat)
                        remaining -= 1
                        forwarded["w"] += 1
                        if beat.last:
                            if remaining != 0:
                                raise SimulationError(
                                    f"{name}: W burst length mismatch"
                                )
                            w_order.popleft()
                        else:
                            w_order[0] = (idx, remaining)
                elif stall_since["w"] < 0 and chan._pop_count < len(chan._items):
                    stall_since["w"] = cycle
            # -- R routing ------------------------------------------------
            if d_r._pop_count < len(d_r._items):
                beat = d_r._items[d_r._pop_count]
                idx = beat.axi_id >> child_bits
                if idx >= n:
                    raise SimulationError(
                        f"{name}: R beat for unknown upstream {idx}"
                    )
                chan = up_r[idx]
                if len(chan._items) + len(chan._staged) < chan.capacity:
                    since = stall_since["r"]
                    if since >= 0:
                        stall_cycles["r"] += cycle - since
                        stall_since["r"] = -1
                    d_r.pop()
                    data, err = beat.data, beat.err
                    hook = self._fault
                    dropped = False
                    if hook is not None:
                        verdict, data, err = hook.filter_r(cycle, beat)
                        dropped = verdict == "drop"
                    if not dropped:
                        chan.push(
                            RBeat(beat.axi_id & child_mask, data, beat.last,
                                  beat.tag, err)
                        )
                        forwarded["r"] += 1
                elif stall_since["r"] < 0:
                    stall_since["r"] = cycle
            # -- B routing ------------------------------------------------
            if d_b._pop_count < len(d_b._items):
                resp = d_b._items[d_b._pop_count]
                idx = resp.axi_id >> child_bits
                if idx >= n:
                    raise SimulationError(
                        f"{name}: B resp for unknown upstream {idx}"
                    )
                chan = up_b[idx]
                if len(chan._items) + len(chan._staged) < chan.capacity:
                    since = stall_since["b"]
                    if since >= 0:
                        stall_cycles["b"] += cycle - since
                        stall_since["b"] = -1
                    d_b.pop()
                    hook = self._fault
                    if not (hook is not None and hook.drop_b(cycle, resp)):
                        chan.push(BResp(resp.axi_id & child_mask, resp.okay,
                                        resp.tag))
                        forwarded["b"] += 1
                elif stall_since["b"] < 0:
                    stall_since["b"] = cycle

        return tick


class AxiPipe(Component):
    """A fixed extra-latency register slice on every AXI channel.

    Models the deep buffering Beethoven inserts on SLR crossings.  Items
    popped from the upstream port become pushable downstream ``latency``
    cycles later (on top of the usual one-cycle channel registration).
    """

    def __init__(self, upstream: AxiPort, downstream, latency: int, name: str = "axipipe") -> None:
        super().__init__(name)
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.up = upstream
        self.down = as_link(downstream)
        self.latency = latency
        self._delay: dict = {ch: deque() for ch in ("ar", "aw", "w", "r", "b")}

    @property
    def metric_path(self) -> str:
        return "noc/" + self.name.replace(".", "/")

    def register_metrics(self, scope) -> None:
        scope.bind("latency", lambda: self.latency)
        for ch in ("ar", "aw", "w", "r", "b"):
            scope.bind(f"in_flight_{ch}", lambda ch=ch: len(self._delay[ch]))

    def tick(self, cycle: int) -> None:
        self._ingest(cycle, "ar", self.up.ar)
        self._ingest(cycle, "aw", self.up.aw)
        self._ingest(cycle, "w", self.up.w)
        self._ingest(cycle, "r", self.down.port.r)
        self._ingest(cycle, "b", self.down.port.b)
        self._drain(cycle, "ar", lambda item: self.down.push_ar(cycle, item), self.down.port.ar)
        self._drain(cycle, "aw", lambda item: self.down.push_aw(cycle, item), self.down.port.aw)
        self._drain(cycle, "w", lambda item: self.down.push_w(cycle, item), self.down.port.w)
        self._drain(cycle, "r", lambda item: self.up.r.push(item), self.up.r)
        self._drain(cycle, "b", lambda item: self.up.b.push(item), self.up.b)

    def _ingest(self, cycle: int, key: str, chan) -> None:
        if chan.can_pop():
            self._delay[key].append((cycle + self.latency, chan.pop()))

    def _drain(self, cycle: int, key: str, push, chan) -> None:
        q = self._delay[key]
        if q and q[0][0] <= cycle and chan.can_push():
            push(q.popleft()[1])

    def next_event(self, cycle: int) -> float:
        """Sleep until the oldest in-flight item matures out of a delay line;
        ingest is channel-reactive."""
        heads = [q[0][0] for q in self._delay.values() if q]
        if not heads:
            return NEVER
        return max(cycle, min(heads))

    def compile_hint(self):
        """Same hint as :meth:`next_event` with the five delay deques bound
        and no intermediate list built."""
        queues = tuple(self._delay.values())

        def hint(cycle):
            best = NEVER
            for q in queues:
                if q:
                    due = q[0][0]
                    if due < best:
                        best = due
            if best < cycle:
                return cycle
            return best

        return hint

    def wake_channels(self):
        # Ingests from both port faces and drains into both, so traffic (or
        # freed space) on either side is a wake condition.
        return list(self.up.channels()) + list(self.down.port.channels())

    # -- compiled tick -------------------------------------------------------
    def compile_tick(self):
        """Specialised tick: the five ingest/drain pairs with delay deques and
        channel endpoints bound, identical ordering to :meth:`tick`."""
        up = self.up
        down = self.down
        d = down.port
        latency = self.latency
        delay = self._delay
        q_ar, q_aw, q_w, q_r, q_b = (
            delay["ar"], delay["aw"], delay["w"], delay["r"], delay["b"]
        )
        u_ar, u_aw, u_w, u_r, u_b = up.ar, up.aw, up.w, up.r, up.b
        d_ar, d_aw, d_w, d_r, d_b = d.ar, d.aw, d.w, d.r, d.b
        push_ar, push_aw, push_w = down.push_ar, down.push_aw, down.push_w

        def tick(cycle):
            due = cycle + latency
            if u_ar._pop_count < len(u_ar._items):
                q_ar.append((due, u_ar.pop()))
            if u_aw._pop_count < len(u_aw._items):
                q_aw.append((due, u_aw.pop()))
            if u_w._pop_count < len(u_w._items):
                q_w.append((due, u_w.pop()))
            if d_r._pop_count < len(d_r._items):
                q_r.append((due, d_r.pop()))
            if d_b._pop_count < len(d_b._items):
                q_b.append((due, d_b.pop()))
            if q_ar and q_ar[0][0] <= cycle and (
                len(d_ar._items) + len(d_ar._staged) < d_ar.capacity
            ):
                push_ar(cycle, q_ar.popleft()[1])
            if q_aw and q_aw[0][0] <= cycle and (
                len(d_aw._items) + len(d_aw._staged) < d_aw.capacity
            ):
                push_aw(cycle, q_aw.popleft()[1])
            if q_w and q_w[0][0] <= cycle and (
                len(d_w._items) + len(d_w._staged) < d_w.capacity
            ):
                push_w(cycle, q_w.popleft()[1])
            if q_r and q_r[0][0] <= cycle and (
                len(u_r._items) + len(u_r._staged) < u_r.capacity
            ):
                u_r.push(q_r.popleft()[1])
            if q_b and q_b[0][0] <= cycle and (
                len(u_b._items) + len(u_b._staged) < u_b.capacity
            ):
                u_b.push(q_b.popleft()[1])

        return tick
