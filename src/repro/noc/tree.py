"""SLR-aware tree network construction (Section II-B, Multi-Die Designs).

Beethoven builds a buffer-tree subnetwork per SLR, then bridges the subtrees
toward the SLR that hosts the external memory interface with deep pipeline
buffering, and finally funnels into the controller's narrow ID space.  The
builder here does exactly that over the simulation components and reports the
structural statistics (node/pipe/link counts, fanouts, depth) that the FPGA
resource model prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.axi.types import AxiParams, AxiPort
from repro.noc.axi_node import AxiBufferNode, AxiPipe, bits_for
from repro.noc.idmap import IdCompressor
from repro.sim import Component


@dataclass
class BuiltNetwork:
    """A constructed network plus the structure report used for costing."""

    components: List[Component] = field(default_factory=list)
    interior_ports: List[AxiPort] = field(default_factory=list)
    n_nodes: int = 0
    n_pipes: int = 0
    n_crossings: int = 0
    depth: int = 0
    max_fanout: int = 0
    nodes_per_slr: Dict[int, int] = field(default_factory=dict)
    # SLR placement records, consumed by the distributed partitioner
    # (repro.dist): which die each network component / interior port lives
    # on, and for each AxiPipe the (upstream slr, downstream slr) pair it
    # spans.  Keyed by id() — the objects themselves are the identity.
    component_slr: Dict[int, int] = field(default_factory=dict)
    port_slr: Dict[int, int] = field(default_factory=dict)
    pipe_sides: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    def register_with(self, sim) -> None:
        # Interior-port channels are registered after the node components
        # that react to them; that is fine for selective scheduling because
        # the simulator builds channel->component wake subscriptions lazily
        # at the first run(), when all registrations are complete.
        for comp in self.components:
            sim.add(comp)
        for port in self.interior_ports:
            for chan in port.channels():
                sim.register_channel(chan)


@dataclass(frozen=True)
class TreeConfig:
    """Elaboration knobs a platform exposes (paper: 'network elaboration
    knobs, e.g. maximum supported degree of crossbars')."""

    fanout: int = 8
    interior_depth: int = 4
    slr_crossing_latency: int = 4
    slr_aware: bool = True


class TreeBuilder:
    """Builds the memory-side AXI network from endpoint ports to a slave."""

    def __init__(self, config: TreeConfig, endpoint_params: AxiParams) -> None:
        self.config = config
        self.endpoint_params = endpoint_params
        self._name_counter = 0

    def _fresh_name(self, prefix: str) -> str:
        self._name_counter += 1
        return f"{prefix}{self._name_counter}"

    def _interior_params(self, id_bits: int) -> AxiParams:
        ep = self.endpoint_params
        return AxiParams(
            beat_bytes=ep.beat_bytes,
            id_bits=id_bits,
            addr_bits=ep.addr_bits,
            max_burst_beats=ep.max_burst_beats,
        )

    def _build_subtree(
        self,
        ports: Sequence[AxiPort],
        child_id_bits: int,
        net: BuiltNetwork,
        slr: int,
        prefix: str,
    ) -> Tuple[AxiPort, int, int]:
        """Reduce ``ports`` to one port; returns (port, id_bits, depth)."""
        if len(ports) == 1:
            return ports[0], child_id_bits, 0
        fanout = max(2, self.config.fanout)
        groups = [ports[i : i + fanout] for i in range(0, len(ports), fanout)]
        next_ports: List[AxiPort] = []
        out_bits = child_id_bits + bits_for(max(len(g) for g in groups))
        for group in groups:
            down = AxiPort(
                self._interior_params(out_bits),
                self._fresh_name(f"{prefix}.l"),
                depth=self.config.interior_depth,
            )
            node = AxiBufferNode(list(group), down, child_id_bits, self._fresh_name(f"{prefix}.n"))
            net.components.append(node)
            net.interior_ports.append(down)
            net.component_slr[id(node)] = slr
            net.port_slr[id(down)] = slr
            net.n_nodes += 1
            net.max_fanout = max(net.max_fanout, len(group))
            net.nodes_per_slr[slr] = net.nodes_per_slr.get(slr, 0) + 1
            next_ports.append(down)
        port, bits, depth = self._build_subtree(next_ports, out_bits, net, slr, prefix)
        return port, bits, depth + 1

    def build(
        self,
        endpoints: Sequence[Tuple[AxiPort, int]],
        target,
        child_id_bits: int,
        root_slr: int = 0,
    ) -> BuiltNetwork:
        """Connect ``endpoints`` (port, slr) to the slave ``target``.

        With ``slr_aware`` unset, all endpoints are thrown into one flat
        arbiter regardless of placement — the naive configuration the paper
        reports as consistently failing timing; the FPGA model penalises its
        fanout, and here it still *functions*, just without crossing buffers.
        """
        if not endpoints:
            raise ValueError("network needs at least one endpoint")
        net = BuiltNetwork()
        if self.config.slr_aware:
            by_slr: Dict[int, List[AxiPort]] = {}
            for port, slr in endpoints:
                by_slr.setdefault(slr, []).append(port)
            slr_roots: List[AxiPort] = []
            root_bits = child_id_bits
            for slr in sorted(by_slr):
                sub_port, bits, depth = self._build_subtree(
                    by_slr[slr], child_id_bits, net, slr, f"slr{slr}"
                )
                net.depth = max(net.depth, depth)
                root_bits = max(root_bits, bits)
                if slr != root_slr:
                    bridged = AxiPort(
                        self._interior_params(bits),
                        self._fresh_name("bridge"),
                        depth=self.config.interior_depth,
                    )
                    pipe = AxiPipe(
                        sub_port,
                        bridged,
                        self.config.slr_crossing_latency,
                        self._fresh_name("xslr"),
                    )
                    net.components.append(pipe)
                    net.interior_ports.append(bridged)
                    # The bridged (downstream) port lives on the root die;
                    # the pipe itself spans the crossing.
                    net.port_slr[id(bridged)] = root_slr
                    net.pipe_sides[id(pipe)] = (slr, root_slr)
                    net.n_pipes += 1
                    net.n_crossings += abs(slr - root_slr)
                    sub_port = bridged
                slr_roots.append(sub_port)
            root_port, root_bits, depth = self._build_subtree(
                slr_roots, root_bits, net, root_slr, "root"
            )
            net.depth = max(net.depth, net.depth + depth)
        else:
            ports = [p for p, _slr in endpoints]
            root_bits = child_id_bits + bits_for(len(ports))
            if len(ports) > 1:
                root_port = AxiPort(
                    self._interior_params(root_bits),
                    self._fresh_name("flat"),
                    depth=self.config.interior_depth,
                )
                node = AxiBufferNode(ports, root_port, child_id_bits, "flatnode")
                net.components.append(node)
                net.interior_ports.append(root_port)
                net.component_slr[id(node)] = root_slr
                net.port_slr[id(root_port)] = root_slr
                net.n_nodes += 1
                net.max_fanout = len(ports)
                net.depth = 1
            else:
                root_port = ports[0]
        compressor = IdCompressor(root_port, target, self._fresh_name("idmap"))
        net.components.append(compressor)
        net.component_slr[id(compressor)] = root_slr
        return net
