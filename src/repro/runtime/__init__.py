"""Host runtime: allocators, the runtime server, handles and futures."""

from repro.runtime.allocator import (
    AllocationError,
    EmbeddedAllocator,
    FirstFitAllocator,
    HUGEPAGE_BYTES,
    make_allocator,
)
from repro.runtime.handle import (
    ClientHandle,
    FpgaHandle,
    RemotePtr,
    ResponseHandle,
    bindings_for,
)
from repro.runtime.server import CommandContext, RuntimeServer, WatchdogConfig

__all__ = [
    "CommandContext",
    "WatchdogConfig",
    "ClientHandle",
    "AllocationError",
    "EmbeddedAllocator",
    "FirstFitAllocator",
    "HUGEPAGE_BYTES",
    "make_allocator",
    "FpgaHandle",
    "RemotePtr",
    "ResponseHandle",
    "bindings_for",
    "RuntimeServer",
]
