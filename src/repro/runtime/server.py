"""The FPGA management runtime server (paper Section II-C1).

A userspace server arbitrates fair access to the command/response bus: every
host command acquires the server lock, is serialised through the MMIO
interface one 32-bit word at a time, and the server polls the MMIO response
registers while commands are in flight.  All three costs are platform
parameters, and their serialisation is what produces the ideal-vs-measured
gap for low-latency kernels in the paper's Figure 6 ("low-latency operations
have much higher contention for the runtime server lock").

The server also hosts the *command watchdog* (repro.faults): when a
:class:`WatchdogConfig` with a deadline is installed, every in-flight command
carries a deadline; commands past it are timed out, retried with capped
exponential backoff when idempotent, and cores that keep missing deadlines
are quarantined so the host can degrade gracefully instead of hanging.  With
the default (disabled) config the watchdog adds no behaviour and no cost.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.command.rocc import RoccInstruction, RoccResponse
from repro.command.router import MmioFrontend
from repro.faults.errors import CommandTimeout
from repro.obs.registry import Counter, Histogram
from repro.platforms.base import HostInterface
from repro.sim import NEVER, Component


@dataclass
class WatchdogConfig:
    """Deadline/retry/quarantine policy for in-flight commands.

    ``timeout_cycles=None`` (the default) disables the watchdog entirely —
    the server then behaves exactly as before this layer existed.
    """

    #: Cycles a dispatched command may stay un-responded before timing out.
    timeout_cycles: Optional[int] = None
    #: Retries per command (beyond the first attempt) before giving up.
    max_retries: int = 3
    #: First retry waits this long; each further retry doubles it.
    backoff_base_cycles: int = 256
    #: Exponential backoff is capped here.
    backoff_cap_cycles: int = 16384
    #: Timeouts a core may accumulate before it is quarantined.
    quarantine_strikes: int = 3

    @property
    def enabled(self) -> bool:
        return self.timeout_cycles is not None and self.timeout_cycles > 0

    def backoff_cycles(self, attempts: int) -> int:
        """Backoff before attempt ``attempts + 1`` (attempts >= 1)."""
        return min(self.backoff_base_cycles << (attempts - 1), self.backoff_cap_cycles)


@dataclass
class CommandContext:
    """Watchdog-facing identity of one logical host command.

    The host handle creates one per command it wants protected and threads it
    through :meth:`RuntimeServer.submit`.  ``resubmit`` re-issues the command
    (possibly onto a different core — the handle owns routing); ``on_error``
    receives the terminal typed error instead of it escaping into the
    simulation loop.
    """

    key: Tuple[int, int]
    label: str = ""
    retryable: bool = True
    attempts: int = 1
    resubmit: Optional[Callable[[], None]] = None
    on_error: Optional[Callable[[Exception], None]] = None
    #: Command uid assigned by the issuing handle (0 = unregistered).  The
    #: snapshot layer serialises in-flight commands by uid and resolves them
    #: back to live contexts/callbacks through the handle's call registry.
    uid: int = 0


@dataclass
class _Waiter:
    """One in-flight command awaiting its response."""

    callback: Callable[[RoccResponse], None]
    span_id: int = 0
    deadline: float = NEVER
    ctx: Optional[CommandContext] = None


@dataclass
class PendingCommand:
    words: List[int]
    on_response: Optional[Callable[[RoccResponse], None]]
    key: Tuple[int, int]  # (system_id, core_id)
    enqueue_cycle: int = 0
    client: int = 0
    dispatch_start: Optional[int] = None
    dispatch_end: Optional[int] = None
    span_id: int = 0  # observability root span (0 = untracked)
    ctx: Optional[CommandContext] = None
    #: Per-client submission sequence number (FIFO-per-client guarantee).
    seq: int = 0
    #: Batch id from the serving layer's scheduler; consecutive commands of
    #: one (client, batch) pair skip the lock re-acquisition cost.
    batch: Optional[int] = None


class RuntimeServer(Component):
    """Serialises host commands onto the MMIO frontend and polls responses."""

    def __init__(
        self,
        mmio: MmioFrontend,
        host: HostInterface,
        name: str = "server",
        spans=None,
        watchdog: Optional[WatchdogConfig] = None,
        tracer=None,
    ) -> None:
        super().__init__(name)
        self.mmio = mmio
        self.host = host
        # Optional CommandSpanTracker: assigns IDs to host commands here and
        # follows them through dispatch, delivery, execution, and response.
        self.spans = spans
        self.watchdog = watchdog if watchdog is not None else WatchdogConfig()
        self.tracer = tracer
        # Fair arbitration: one command queue per client process, served
        # round-robin (the "arbitrating fair access to the command-response
        # bus" of Section II-C1).  Within one client, dispatch order is a
        # *guaranteed* FIFO: each submission is stamped with a per-client
        # sequence number and `_dispatch` checks monotonicity on every pop
        # (`fifo_violations` must stay 0 — tests assert it).
        self._queues: Dict[int, Deque[PendingCommand]] = {}
        self._client_rr: List[int] = []
        self._rr_pos = 0
        self._client_seq: Dict[int, int] = {}
        self._dispatched_seq: Dict[int, int] = {}
        # (client, batch) of the last fully dispatched batched command; the
        # next command continues the batch iff it matches.
        self._last_batch: Optional[Tuple[int, int]] = None
        self._current: Optional[PendingCommand] = None
        self._words_left: List[int] = []
        self._next_word_cycle = 0
        self._lock_until = 0
        self._next_poll = 0
        self._resp_words: List[int] = []
        # key -> FIFO of in-flight waiters (per-core responses are ordered).
        self._waiters: Dict[Tuple[int, int], Deque[_Waiter]] = {}
        # Matured-retry min-heap of (ready_cycle, seq, ctx).
        self._retry_heap: List[Tuple[int, int, CommandContext]] = []
        self._retry_seq = 0
        self._strikes: Dict[Tuple[int, int], int] = {}
        #: Cores the watchdog has given up on; the handle reroutes around them.
        self.quarantined: Set[Tuple[int, int]] = set()
        #: Host hook invoked (once per core) at quarantine time.
        self.on_quarantine: Optional[Callable[[Tuple[int, int]], None]] = None
        # Statistics for the contention analysis.  Typed metrics compare and
        # accumulate like ints, so call sites and tests read them unchanged.
        self.commands_sent = Counter()
        self.responses_received = Counter()
        self.lock_wait_cycles = Counter()
        self.busy_cycles = Counter()
        self.lock_wait_hist = Histogram()
        # Watchdog statistics: always attached (zero when disabled) so metric
        # dumps have a config-independent key set.
        self.timeouts = Counter()
        self.retries = Counter()
        self.quarantines = Counter()
        self.late_responses = Counter()
        self.rerouted = Counter()  # incremented by the handle's router
        # Serving-layer batching: lock acquisitions skipped because the
        # command continued the previous command's batch, and the cycles
        # that amortisation saved.
        self.batch_lock_skips = Counter()
        self.batch_cycles_saved = Counter()
        self.fifo_violations = Counter()
        # Per-client lock-wait samples (enqueue -> dispatch), for fairness
        # analysis of the round-robin arbiter.
        self.client_lock_waits: Dict[int, List[int]] = {}
        # uid -> {"ctx", "fut", "make_cb"}; installed by the owning
        # FpgaHandle so snapshot restore can resolve command uids back to
        # live contexts and rebuild response callbacks.
        self._host_calls: Optional[Dict[int, Dict[str, object]]] = None
        #: Snapshot-restore bookkeeping: uids the last restore could not
        #: resolve against the call registry (0 on a faithful restore).
        self._snapshot_unresolved = 0

    @property
    def metric_path(self) -> str:
        return "runtime/" + self.name.replace(".", "/")

    def register_metrics(self, scope) -> None:
        scope.attach("commands_sent", self.commands_sent)
        scope.attach("responses_received", self.responses_received)
        scope.attach("lock_wait_cycles", self.lock_wait_cycles)
        scope.attach("busy_cycles", self.busy_cycles)
        scope.attach("lock_wait", self.lock_wait_hist)
        scope.attach("batch_lock_skips", self.batch_lock_skips)
        scope.attach("batch_cycles_saved", self.batch_cycles_saved)
        scope.attach("fifo_violations", self.fifo_violations)
        scope.bind("in_flight", lambda: self.in_flight)
        wd = scope.scope("watchdog")
        wd.attach("timeouts", self.timeouts)
        wd.attach("retries", self.retries)
        wd.attach("quarantines", self.quarantines)
        wd.attach("late_responses", self.late_responses)
        wd.attach("rerouted", self.rerouted)
        wd.bind("pending_retries", lambda: len(self._retry_heap))
        wd.bind("quarantined_cores", lambda: len(self.quarantined))
        if self.spans is not None:
            self.spans.register_metrics(scope)

    # ------------------------------------------------------------- host API
    def submit(
        self,
        inst: RoccInstruction,
        on_response: Optional[Callable[[RoccResponse], None]],
        cycle_hint: int = 0,
        client: int = 0,
        label: Optional[str] = None,
        ctx: Optional[CommandContext] = None,
        tenant: str = "",
        batch: Optional[int] = None,
    ) -> None:
        cmd = PendingCommand(
            inst.encode_words(),
            on_response,
            (inst.system_id, inst.core_id),
            cycle_hint,
            client,
            ctx=ctx,
            batch=batch,
        )
        self._client_seq[client] = cmd.seq = self._client_seq.get(client, 0) + 1
        # Only the completing chunk of a multi-chunk command carries the
        # response callback; that chunk is the one the span follows.
        if self.spans is not None and on_response is not None:
            cmd.span_id = self.spans.command_submitted(
                cycle_hint, cmd.key, client, label or f"io{inst.funct7}",
                tenant=tenant,
            )
        if client not in self._queues:
            self._queues[client] = deque()
            self._client_rr.append(client)
        self._queues[client].append(cmd)

    def _pop_next(self) -> Optional[PendingCommand]:
        n = len(self._client_rr)
        for k in range(n):
            client = self._client_rr[(self._rr_pos + k) % n]
            queue = self._queues[client]
            if queue:
                self._rr_pos = (self._rr_pos + k + 1) % n
                return queue.popleft()
        return None

    @property
    def in_flight(self) -> int:
        queued = sum(len(q) for q in self._queues.values())
        return (
            queued
            + (1 if self._current else 0)
            + sum(len(q) for q in self._waiters.values())
            + len(self._retry_heap)
        )

    def idle(self) -> bool:
        return (
            self._current is None
            and not any(self._queues.values())
            and not any(self._waiters.values())
            and not self._retry_heap
        )

    # ------------------------------------------------------------ behaviour
    def tick(self, cycle: int) -> None:
        if self._retry_heap:
            self._service_retries(cycle)
        self._dispatch(cycle)
        self._poll(cycle)
        # Deadlines are checked after polling so a response landing exactly
        # at the deadline cycle still wins.
        if self.watchdog.enabled and any(self._waiters.values()):
            self._check_deadlines(cycle)

    def next_event(self, cycle: int) -> float:
        """Next cycle the server acts: a word dispatch, a lock acquisition,
        a poll visit, a matured retry, or a waiter deadline.  An idle server
        (no queued commands, nothing in flight, no waiters) only wakes on a
        new host submission, which the host performs between run calls — so
        it reports :data:`NEVER`."""
        nxt = NEVER
        if self._current is not None:
            nxt = min(nxt, max(cycle, self._next_word_cycle))
        elif any(self._queues.values()):
            nxt = min(nxt, max(cycle, self._lock_until))
        if any(self._waiters.values()):
            nxt = min(nxt, max(cycle, self._next_poll))
            if self.watchdog.enabled:
                for waiters in self._waiters.values():
                    if waiters:
                        nxt = min(nxt, max(cycle, waiters[0].deadline))
        if self._retry_heap:
            nxt = min(nxt, max(cycle, self._retry_heap[0][0]))
        return nxt

    def wake_channels(self):
        # The server owns no channels; it pushes command words into the MMIO
        # frontend (freed space resumes a stalled dispatch) and polls its
        # response words.  New submissions happen between run calls, which
        # re-wake every component anyway.
        return [self.mmio.cmd_words, self.mmio.resp_words]

    def _dispatch(self, cycle: int) -> None:
        if self._current is None and cycle >= self._lock_until:
            self._current = self._pop_next()
            if self._current is None:
                return
            cur = self._current
            last = self._dispatched_seq.get(cur.client, 0)
            if cur.seq != last + 1:
                self.fifo_violations += 1  # must never happen; tests assert 0
            self._dispatched_seq[cur.client] = cur.seq
            cur.dispatch_start = cycle
            wait = max(0, cycle - cur.enqueue_cycle)
            self.lock_wait_cycles += wait
            self.lock_wait_hist.observe(wait)
            self.client_lock_waits.setdefault(cur.client, []).append(wait)
            self._words_left = list(cur.words)
            # Lock acquisition + per-command bookkeeping cost — skipped when
            # this command continues the immediately preceding command's
            # batch (same client, same batch id) *and* the bus never went
            # idle in between (we are dispatching the very cycle the lock
            # would have been released): the serving layer coalesces
            # compatible commands to amortise MMIO serialisation, but an
            # idle gap means the lock was genuinely dropped and must be
            # re-acquired at full cost.
            lock_cycles = self.host.command_lock_cycles
            if (
                cur.batch is not None
                and self._last_batch == (cur.client, cur.batch)
                and cycle == self._lock_until
            ):
                lock_cycles = 0
                self.batch_lock_skips += 1
                self.batch_cycles_saved += self.host.command_lock_cycles
            self._next_word_cycle = cycle + lock_cycles
            if self.spans is not None and cur.span_id:
                self.spans.dispatch_begin(cycle, cur.span_id)
        if self._current is not None and cycle >= self._next_word_cycle:
            if self._words_left and self.mmio.cmd_words.can_push():
                self.mmio.cmd_words.push(self._words_left.pop(0))
                self._next_word_cycle = cycle + self.host.mmio_word_cycles
                self.busy_cycles += self.host.mmio_word_cycles
            if not self._words_left:
                cmd = self._current
                cmd.dispatch_end = cycle
                if self.spans is not None and cmd.span_id:
                    self.spans.dispatch_end(cycle, cmd.span_id, cmd.key)
                if cmd.on_response is not None:
                    deadline: float = NEVER
                    if self.watchdog.enabled:
                        deadline = cycle + self.watchdog.timeout_cycles
                    self._waiters.setdefault(cmd.key, deque()).append(
                        _Waiter(cmd.on_response, cmd.span_id, deadline, cmd.ctx)
                    )
                self.commands_sent += 1
                self._last_batch = (
                    (cmd.client, cmd.batch) if cmd.batch is not None else None
                )
                self._current = None
                self._lock_until = cycle + 1

    def _poll(self, cycle: int) -> None:
        if cycle < self._next_poll:
            return
        if not any(self._waiters.values()):
            return
        # One poll visit reads as many response words as are ready (a burst
        # of MMIO reads), then sleeps for the polling interval.
        progressed = False
        while self.mmio.resp_words.can_pop():
            self._resp_words.append(self.mmio.resp_words.pop())
            progressed = True
            if len(self._resp_words) == 4:
                resp = RoccResponse.decode_words(self._resp_words)
                self._resp_words.clear()
                key = (resp.system_id, resp.core_id)
                waiters = self._waiters.get(key)
                if waiters:
                    waiter = waiters.popleft()
                    if self.spans is not None and waiter.span_id:
                        self.spans.command_completed(cycle, waiter.span_id)
                    if self._strikes:
                        self._strikes.pop(key, None)  # core proved healthy
                    waiter.callback(resp)
                else:
                    # A command we already timed out answered after all.
                    self.late_responses += 1
                    if self.tracer is not None:
                        self.tracer.record(
                            cycle, "watchdog", "late_response", {"core": key}
                        )
                self.responses_received += 1
        if progressed:
            self._next_poll = cycle + self.host.mmio_word_cycles
        else:
            self._next_poll = cycle + self.host.response_poll_cycles

    # ------------------------------------------------------------- watchdog
    def _service_retries(self, cycle: int) -> None:
        while self._retry_heap and self._retry_heap[0][0] <= cycle:
            _, _, ctx = heapq.heappop(self._retry_heap)
            self.retries += 1
            ctx.attempts += 1
            if self.tracer is not None:
                self.tracer.record(
                    cycle,
                    "watchdog",
                    "retry",
                    {"core": ctx.key, "label": ctx.label, "attempt": ctx.attempts},
                )
            try:
                ctx.resubmit()
            except Exception as exc:  # e.g. CoreQuarantined from rerouting
                if ctx.on_error is not None:
                    ctx.on_error(exc)
                else:
                    raise

    def _check_deadlines(self, cycle: int) -> None:
        for key, waiters in self._waiters.items():
            while waiters and cycle >= waiters[0].deadline:
                self._on_timeout(cycle, key, waiters.popleft())

    def _on_timeout(self, cycle: int, key: Tuple[int, int], waiter: _Waiter) -> None:
        self.timeouts += 1
        strikes = self._strikes.get(key, 0) + 1
        self._strikes[key] = strikes
        ctx = waiter.ctx
        label = ctx.label if ctx is not None else ""
        if self.tracer is not None:
            self.tracer.record(
                cycle,
                "watchdog",
                "timeout",
                {"core": key, "label": label, "strikes": strikes},
            )
        if self.spans is not None and waiter.span_id:
            self.spans.command_completed(cycle, waiter.span_id)
        if strikes >= self.watchdog.quarantine_strikes and key not in self.quarantined:
            self.quarantined.add(key)
            self.quarantines += 1
            if self.tracer is not None:
                self.tracer.record(cycle, "watchdog", "quarantine", {"core": key})
            if self.on_quarantine is not None:
                self.on_quarantine(key)
        if (
            ctx is not None
            and ctx.retryable
            and ctx.resubmit is not None
            and ctx.attempts - 1 < self.watchdog.max_retries
        ):
            self._retry_seq += 1
            heapq.heappush(
                self._retry_heap,
                (cycle + self.watchdog.backoff_cycles(ctx.attempts), self._retry_seq, ctx),
            )
            return
        err = CommandTimeout(
            f"command {label or '<untracked>'} on core {key} timed out at cycle "
            f"{cycle} after {ctx.attempts if ctx else 1} attempt(s)",
            key=key,
            attempts=ctx.attempts if ctx else 1,
        )
        if ctx is not None and ctx.on_error is not None:
            ctx.on_error(err)
        else:
            raise err

    # ------------------------------------------------------------- snapshot
    def snapshot_state(self, fr) -> Dict[str, object]:
        """Explicit freeze: response callbacks are *structure* (closures over
        the handle, the future, the routing tables) and cannot be pickled, so
        every queued/in-flight command is serialised with its context uid
        instead; restore resolves uids through the handle's call registry and
        rebuilds behaviourally identical callbacks."""
        ctxs: Dict[int, Dict[str, object]] = {}

        def note(ctx: Optional[CommandContext]) -> int:
            if ctx is None:
                return 0
            if ctx.uid:
                ctxs[ctx.uid] = {"attempts": ctx.attempts, "key": tuple(ctx.key)}
            return ctx.uid

        def freeze_cmd(cmd: PendingCommand) -> Dict[str, object]:
            return {
                "words": list(cmd.words),
                "key": tuple(cmd.key),
                "enqueue_cycle": cmd.enqueue_cycle,
                "client": cmd.client,
                "dispatch_start": cmd.dispatch_start,
                "dispatch_end": cmd.dispatch_end,
                "span_id": cmd.span_id,
                "seq": cmd.seq,
                "batch": cmd.batch,
                "ctx_uid": note(cmd.ctx),
                "has_cb": cmd.on_response is not None,
            }

        return {
            "queues": [
                (client, [freeze_cmd(c) for c in q])
                for client, q in self._queues.items()
            ],
            "client_rr": list(self._client_rr),
            "rr_pos": self._rr_pos,
            "client_seq": dict(self._client_seq),
            "dispatched_seq": dict(self._dispatched_seq),
            "last_batch": self._last_batch,
            "current": (
                freeze_cmd(self._current) if self._current is not None else None
            ),
            "words_left": list(self._words_left),
            "next_word_cycle": self._next_word_cycle,
            "lock_until": self._lock_until,
            "next_poll": self._next_poll,
            "resp_words": list(self._resp_words),
            "waiters": [
                (
                    key,
                    [
                        {
                            "span_id": w.span_id,
                            "deadline": w.deadline,
                            "ctx_uid": note(w.ctx),
                        }
                        for w in ws
                    ],
                )
                for key, ws in self._waiters.items()
            ],
            "retry_heap": [
                (ready, rseq, note(ctx)) for ready, rseq, ctx in self._retry_heap
            ],
            "retry_seq": self._retry_seq,
            "strikes": dict(self._strikes),
            "quarantined": sorted(self.quarantined),
            "client_lock_waits": {
                client: list(v) for client, v in self.client_lock_waits.items()
            },
            "ctxs": ctxs,
        }

    def restore_state(self, state: Dict[str, object], th) -> None:
        calls = self._host_calls if self._host_calls is not None else {}
        unresolved = 0

        def ctx_for(uid: int) -> Optional[CommandContext]:
            nonlocal unresolved
            if not uid:
                return None
            rec = calls.get(uid)
            if rec is None:
                unresolved += 1
                return None
            return rec["ctx"]

        def cb_for(uid: int) -> Callable[[RoccResponse], None]:
            nonlocal unresolved
            rec = calls.get(uid) if uid else None
            if rec is None:
                unresolved += 1
                return lambda resp: None
            return rec["make_cb"]()

        for uid, st in state["ctxs"].items():
            rec = calls.get(uid)
            if rec is None:
                unresolved += 1
                continue
            ctx = rec["ctx"]
            ctx.attempts = st["attempts"]
            ctx.key = tuple(st["key"])

        def thaw_cmd(d: Dict[str, object]) -> PendingCommand:
            return PendingCommand(
                list(d["words"]),
                cb_for(d["ctx_uid"]) if d["has_cb"] else None,
                tuple(d["key"]),
                d["enqueue_cycle"],
                d["client"],
                d["dispatch_start"],
                d["dispatch_end"],
                d["span_id"],
                ctx_for(d["ctx_uid"]),
                d["seq"],
                d["batch"],
            )

        self._queues = {
            client: deque(thaw_cmd(d) for d in cmds)
            for client, cmds in state["queues"]
        }
        self._client_rr = list(state["client_rr"])
        self._rr_pos = state["rr_pos"]
        self._client_seq = dict(state["client_seq"])
        self._dispatched_seq = dict(state["dispatched_seq"])
        lb = state["last_batch"]
        self._last_batch = tuple(lb) if lb is not None else None
        cur = state["current"]
        self._current = thaw_cmd(cur) if cur is not None else None
        self._words_left = list(state["words_left"])
        self._next_word_cycle = state["next_word_cycle"]
        self._lock_until = state["lock_until"]
        self._next_poll = state["next_poll"]
        self._resp_words = list(state["resp_words"])
        self._waiters = {
            tuple(key): deque(
                _Waiter(
                    cb_for(w["ctx_uid"]),
                    w["span_id"],
                    w["deadline"],
                    ctx_for(w["ctx_uid"]),
                )
                for w in ws
            )
            for key, ws in state["waiters"]
        }
        # A retry without a resolvable context cannot be re-issued; drop it
        # (counted in _snapshot_unresolved) rather than crash the restore.
        heap = []
        for ready, rseq, uid in state["retry_heap"]:
            ctx = ctx_for(uid)
            if ctx is not None:
                heap.append((ready, rseq, ctx))
        heapq.heapify(heap)
        self._retry_heap = heap
        self._retry_seq = state["retry_seq"]
        self._strikes = {tuple(k): v for k, v in state["strikes"].items()}
        self.quarantined.clear()
        self.quarantined.update(tuple(k) for k in state["quarantined"])
        self.client_lock_waits.clear()
        self.client_lock_waits.update(
            {client: list(v) for client, v in state["client_lock_waits"].items()}
        )
        self._snapshot_unresolved = unresolved

    # ---------------------------------------------------------- diagnostics
    def debug_state(self):
        if self.idle():
            return None
        state: Dict[str, object] = {
            "queued": sum(len(q) for q in self._queues.values()),
            "dispatching": (
                {"core": self._current.key, "words_left": len(self._words_left)}
                if self._current is not None
                else None
            ),
            "waiting": {
                str(key): [
                    {
                        "deadline": (None if w.deadline == NEVER else int(w.deadline)),
                        "label": w.ctx.label if w.ctx else "",
                        "attempts": w.ctx.attempts if w.ctx else 1,
                    }
                    for w in waiters
                ]
                for key, waiters in self._waiters.items()
                if waiters
            },
            "pending_retries": [
                {"ready": ready, "core": ctx.key, "label": ctx.label}
                for ready, _, ctx in sorted(self._retry_heap)
            ],
        }
        if self.quarantined:
            state["quarantined"] = sorted(self.quarantined)
        return state
