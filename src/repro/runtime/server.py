"""The FPGA management runtime server (paper Section II-C1).

A userspace server arbitrates fair access to the command/response bus: every
host command acquires the server lock, is serialised through the MMIO
interface one 32-bit word at a time, and the server polls the MMIO response
registers while commands are in flight.  All three costs are platform
parameters, and their serialisation is what produces the ideal-vs-measured
gap for low-latency kernels in the paper's Figure 6 ("low-latency operations
have much higher contention for the runtime server lock").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.command.rocc import RoccInstruction, RoccResponse
from repro.command.router import MmioFrontend
from repro.obs.registry import Counter, Histogram
from repro.platforms.base import HostInterface
from repro.sim import NEVER, Component


@dataclass
class PendingCommand:
    words: List[int]
    on_response: Optional[Callable[[RoccResponse], None]]
    key: Tuple[int, int]  # (system_id, core_id)
    enqueue_cycle: int = 0
    client: int = 0
    dispatch_start: Optional[int] = None
    dispatch_end: Optional[int] = None
    span_id: int = 0  # observability root span (0 = untracked)


class RuntimeServer(Component):
    """Serialises host commands onto the MMIO frontend and polls responses."""

    def __init__(
        self,
        mmio: MmioFrontend,
        host: HostInterface,
        name: str = "server",
        spans=None,
    ) -> None:
        super().__init__(name)
        self.mmio = mmio
        self.host = host
        # Optional CommandSpanTracker: assigns IDs to host commands here and
        # follows them through dispatch, delivery, execution, and response.
        self.spans = spans
        # Fair arbitration: one command queue per client process, served
        # round-robin (the "arbitrating fair access to the command-response
        # bus" of Section II-C1).
        self._queues: Dict[int, Deque[PendingCommand]] = {}
        self._client_rr: List[int] = []
        self._rr_pos = 0
        self._current: Optional[PendingCommand] = None
        self._words_left: List[int] = []
        self._next_word_cycle = 0
        self._lock_until = 0
        self._next_poll = 0
        self._resp_words: List[int] = []
        # key -> FIFO of (callback, span_id) for in-flight commands.
        self._waiters: Dict[
            Tuple[int, int], Deque[Tuple[Callable[[RoccResponse], None], int]]
        ] = {}
        # Statistics for the contention analysis.  Typed metrics compare and
        # accumulate like ints, so call sites and tests read them unchanged.
        self.commands_sent = Counter()
        self.responses_received = Counter()
        self.lock_wait_cycles = Counter()
        self.busy_cycles = Counter()
        self.lock_wait_hist = Histogram()
        # Per-client lock-wait samples (enqueue -> dispatch), for fairness
        # analysis of the round-robin arbiter.
        self.client_lock_waits: Dict[int, List[int]] = {}

    @property
    def metric_path(self) -> str:
        return "runtime/" + self.name.replace(".", "/")

    def register_metrics(self, scope) -> None:
        scope.attach("commands_sent", self.commands_sent)
        scope.attach("responses_received", self.responses_received)
        scope.attach("lock_wait_cycles", self.lock_wait_cycles)
        scope.attach("busy_cycles", self.busy_cycles)
        scope.attach("lock_wait", self.lock_wait_hist)
        scope.bind("in_flight", lambda: self.in_flight)
        if self.spans is not None:
            self.spans.register_metrics(scope)

    # ------------------------------------------------------------- host API
    def submit(
        self,
        inst: RoccInstruction,
        on_response: Optional[Callable[[RoccResponse], None]],
        cycle_hint: int = 0,
        client: int = 0,
        label: Optional[str] = None,
    ) -> None:
        cmd = PendingCommand(
            inst.encode_words(),
            on_response,
            (inst.system_id, inst.core_id),
            cycle_hint,
            client,
        )
        # Only the completing chunk of a multi-chunk command carries the
        # response callback; that chunk is the one the span follows.
        if self.spans is not None and on_response is not None:
            cmd.span_id = self.spans.command_submitted(
                cycle_hint, cmd.key, client, label or f"io{inst.funct7}"
            )
        if client not in self._queues:
            self._queues[client] = deque()
            self._client_rr.append(client)
        self._queues[client].append(cmd)

    def _pop_next(self) -> Optional[PendingCommand]:
        n = len(self._client_rr)
        for k in range(n):
            client = self._client_rr[(self._rr_pos + k) % n]
            queue = self._queues[client]
            if queue:
                self._rr_pos = (self._rr_pos + k + 1) % n
                return queue.popleft()
        return None

    @property
    def in_flight(self) -> int:
        queued = sum(len(q) for q in self._queues.values())
        return queued + (1 if self._current else 0) + sum(
            len(q) for q in self._waiters.values()
        )

    def idle(self) -> bool:
        return (
            self._current is None
            and not any(self._queues.values())
            and not any(self._waiters.values())
        )

    # ------------------------------------------------------------ behaviour
    def tick(self, cycle: int) -> None:
        self._dispatch(cycle)
        self._poll(cycle)

    def next_event(self, cycle: int) -> float:
        """Next cycle the server acts: a word dispatch, a lock acquisition,
        or a poll visit.  An idle server (no queued commands, nothing in
        flight, no waiters) only wakes on a new host submission, which the
        host performs between run calls — so it reports :data:`NEVER`."""
        nxt = NEVER
        if self._current is not None:
            nxt = min(nxt, max(cycle, self._next_word_cycle))
        elif any(self._queues.values()):
            nxt = min(nxt, max(cycle, self._lock_until))
        if any(self._waiters.values()):
            nxt = min(nxt, max(cycle, self._next_poll))
        return nxt

    def wake_channels(self):
        # The server owns no channels; it pushes command words into the MMIO
        # frontend (freed space resumes a stalled dispatch) and polls its
        # response words.  New submissions happen between run calls, which
        # re-wake every component anyway.
        return [self.mmio.cmd_words, self.mmio.resp_words]

    def _dispatch(self, cycle: int) -> None:
        if self._current is None and cycle >= self._lock_until:
            self._current = self._pop_next()
            if self._current is None:
                return
            self._current.dispatch_start = cycle
            wait = max(0, cycle - self._current.enqueue_cycle)
            self.lock_wait_cycles += wait
            self.lock_wait_hist.observe(wait)
            self.client_lock_waits.setdefault(self._current.client, []).append(wait)
            self._words_left = list(self._current.words)
            # Lock acquisition + per-command bookkeeping cost.
            self._next_word_cycle = cycle + self.host.command_lock_cycles
            if self.spans is not None and self._current.span_id:
                self.spans.dispatch_begin(cycle, self._current.span_id)
        if self._current is not None and cycle >= self._next_word_cycle:
            if self._words_left and self.mmio.cmd_words.can_push():
                self.mmio.cmd_words.push(self._words_left.pop(0))
                self._next_word_cycle = cycle + self.host.mmio_word_cycles
                self.busy_cycles += self.host.mmio_word_cycles
            if not self._words_left:
                cmd = self._current
                cmd.dispatch_end = cycle
                if self.spans is not None and cmd.span_id:
                    self.spans.dispatch_end(cycle, cmd.span_id, cmd.key)
                if cmd.on_response is not None:
                    self._waiters.setdefault(cmd.key, deque()).append(
                        (cmd.on_response, cmd.span_id)
                    )
                self.commands_sent += 1
                self._current = None
                self._lock_until = cycle + 1

    def _poll(self, cycle: int) -> None:
        if cycle < self._next_poll:
            return
        if not any(self._waiters.values()):
            return
        # One poll visit reads as many response words as are ready (a burst
        # of MMIO reads), then sleeps for the polling interval.
        progressed = False
        while self.mmio.resp_words.can_pop():
            self._resp_words.append(self.mmio.resp_words.pop())
            progressed = True
            if len(self._resp_words) == 4:
                resp = RoccResponse.decode_words(self._resp_words)
                self._resp_words.clear()
                key = (resp.system_id, resp.core_id)
                waiters = self._waiters.get(key)
                if waiters:
                    callback, span_id = waiters.popleft()
                    if self.spans is not None and span_id:
                        self.spans.command_completed(cycle, span_id)
                    callback(resp)
                self.responses_received += 1
        if progressed:
            self._next_poll = cycle + self.host.mmio_word_cycles
        else:
            self._next_poll = cycle + self.host.response_poll_cycles
