"""FPGA memory-space allocators (paper Section II-C2).

Discrete platforms get a first-fit free-list allocator over the card's
address space, with all allocator state held on the host so separate
processes could share the card without conflicts.  Embedded platforms share
the host address space: the runtime hands out hugepage-aligned *physical*
ranges (modelling the hugepage + page-table-walk trick the paper describes)
and relies on AXI-ACE coherence instead of DMA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


class AllocationError(MemoryError):
    pass


@dataclass
class _FreeBlock:
    addr: int
    size: int


class FirstFitAllocator:
    """First-fit allocator with block coalescing on free."""

    def __init__(self, base: int, size: int, alignment: int = 64) -> None:
        if size <= 0:
            raise ValueError("allocator size must be positive")
        self.base = base
        self.size = size
        self.alignment = alignment
        self._free: List[_FreeBlock] = [_FreeBlock(base, size)]
        self._live: dict = {}

    def _align(self, n: int) -> int:
        a = self.alignment
        return (n + a - 1) // a * a

    def malloc(self, n_bytes: int) -> int:
        if n_bytes <= 0:
            raise AllocationError("allocation size must be positive")
        need = self._align(n_bytes)
        for i, blk in enumerate(self._free):
            if blk.size >= need:
                addr = blk.addr
                blk.addr += need
                blk.size -= need
                if blk.size == 0:
                    del self._free[i]
                self._live[addr] = need
                return addr
        raise AllocationError(
            f"out of accelerator memory: {n_bytes} bytes requested, "
            f"{self.free_bytes} free"
        )

    def free(self, addr: int) -> None:
        size = self._live.pop(addr, None)
        if size is None:
            raise AllocationError(f"free of unknown address {addr:#x}")
        self._free.append(_FreeBlock(addr, size))
        self._free.sort(key=lambda b: b.addr)
        merged: List[_FreeBlock] = []
        for blk in self._free:
            if merged and merged[-1].addr + merged[-1].size == blk.addr:
                merged[-1].size += blk.size
            else:
                merged.append(blk)
        self._free = merged

    @property
    def free_bytes(self) -> int:
        return sum(b.size for b in self._free)

    @property
    def live_allocations(self) -> int:
        return len(self._live)


HUGEPAGE_BYTES = 2 * 1024 * 1024


class EmbeddedAllocator(FirstFitAllocator):
    """Shared-address-space allocator: hugepage-aligned physical ranges."""

    def __init__(self, base: int, size: int) -> None:
        super().__init__(base, size, alignment=HUGEPAGE_BYTES)

    def physical_address_of(self, addr: int) -> int:
        """The paper extracts physical addresses from the OS page table; in
        the model virtual == physical within the reserved region."""
        if addr not in self._live:
            raise AllocationError(f"{addr:#x} is not an active allocation")
        return addr


def make_allocator(discrete: bool, base: int, size: int) -> FirstFitAllocator:
    return FirstFitAllocator(base, size) if discrete else EmbeddedAllocator(base, size)
