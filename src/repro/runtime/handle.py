"""The user-facing runtime library (paper Figure 3c and Section II-C3).

``FpgaHandle`` is the Python analogue of ``fpga_handle_t``: it owns the
allocator for the accelerator memory space, provides DMA routines between the
host and device domains, and sends commands through the runtime server.
Sending a command returns a :class:`ResponseHandle` future whose ``get()``
advances the simulation until the accelerator responds — the same blocking
semantics the generated C++ gives on real hardware.

With a :class:`WatchdogConfig` installed the handle also owns *graceful
degradation*: cores the server quarantines are marked degraded and later
commands (including watchdog retries) are transparently rerouted to the next
healthy core of the same system, so a wedged core costs throughput, not
correctness.  Detected data corruption (``err`` beats poisoning the fault
state) turns a completed command into a retry or a typed
:class:`FaultedResponse` — never silently wrong data.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.command.rocc import RoccInstruction, RoccResponse
from repro.faults.errors import CommandTimeout, CoreQuarantined, FaultedResponse
from repro.obs.registry import Counter
from repro.runtime.allocator import make_allocator
from repro.runtime.server import CommandContext, RuntimeServer, WatchdogConfig
from repro.sim import DeadlockError, PartitionSyncTimeout


class RemotePtr:
    """A device-memory allocation with a host-side shadow buffer.

    On discrete platforms the shadow models the host copy of the data and
    ``copy_to_fpga``/``copy_from_fpga`` move bytes across PCIe; on embedded
    platforms host and device share memory, so the "shadow" writes through
    immediately and the copies are coherence no-ops.
    """

    def __init__(self, handle: "FpgaHandle", fpga_addr: int, size: int) -> None:
        self._handle = handle
        self.fpga_addr = fpga_addr
        self.size = size
        self._host = bytearray(size)

    def get_host_addr(self) -> bytearray:
        """Host-side view (paper: ``mem.getHostAddr()``)."""
        return self._host

    def write(self, data: bytes, offset: int = 0) -> None:
        if offset < 0:
            raise ValueError("negative write offset")
        if offset + len(data) > self.size:
            raise ValueError("write past end of allocation")
        self._host[offset : offset + len(data)] = data
        if not self._handle.discrete:
            self._handle._store_write(self.fpga_addr + offset, bytes(data))

    def read(self, length: Optional[int] = None, offset: int = 0) -> bytes:
        if offset < 0:
            raise ValueError("negative read offset")
        length = self.size - offset if length is None else length
        if length < 0:
            raise ValueError("negative read length")
        if offset + length > self.size:
            raise ValueError("read past end of allocation")
        if not self._handle.discrete:
            return self._handle._store_read(self.fpga_addr + offset, length)
        return bytes(self._host[offset : offset + length])

    def offset(self, n: int) -> int:
        """Device address at byte offset ``n`` (pointer arithmetic)."""
        if n < 0 or n > self.size:
            raise ValueError("offset outside allocation")
        return self.fpga_addr + n

    def __len__(self) -> int:
        return self.size


class ResponseHandle:
    """Future for one in-flight accelerator command.

    Completes either with a response or with a typed error (watchdog
    timeout, quarantine, detected corruption); ``get``/``try_get`` raise the
    stored error rather than returning bad data.
    """

    def __init__(self, handle: "FpgaHandle", response_spec) -> None:
        self._handle = handle
        self._spec = response_spec
        self._response: Optional[RoccResponse] = None
        self._error: Optional[Exception] = None
        self._callbacks: list = []
        self.submitted_cycle = handle.design.sim.cycle

    def _complete(self, resp: RoccResponse) -> None:
        if self._error is None and self._response is None:
            self._response = resp
            self._notify()

    def _fail(self, exc: Exception) -> None:
        # First outcome wins; a late response after a typed error is dropped.
        if self._error is None and self._response is None:
            self._error = exc
            self._notify()

    def _notify(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def add_done_callback(self, fn) -> None:
        """Invoke ``fn(self)`` exactly once when the future settles.

        Fires from inside the runtime server's poll tick (or immediately if
        already settled) — the same mid-tick context the watchdog's retry
        resubmission runs in, so callbacks may safely submit new commands.
        Retries are invisible here: only the terminal outcome notifies.
        """
        if self.done:
            fn(self)
        else:
            self._callbacks.append(fn)

    @property
    def done(self) -> bool:
        return self._response is not None or self._error is not None

    def try_get(self) -> Optional[Dict[str, object]]:
        """Non-blocking check (paper: ``try_get``)."""
        if self._error is not None:
            raise self._error
        if self._response is None:
            return None
        return self._decode()

    def get(
        self, max_cycles: int = 10_000_000, timeout_cycles: Optional[int] = None
    ) -> Dict[str, object]:
        """Block (advance simulation) until the response arrives.

        ``timeout_cycles`` bounds how long *this wait* may run: past it the
        wait raises :class:`CommandTimeout` (carrying the kernel's structured
        deadlock dump) instead of the generic deadlock error.
        """
        budget = max_cycles if timeout_cycles is None else min(max_cycles, timeout_cycles)
        try:
            self._handle.run_until(lambda: self.done, budget)
        except DeadlockError as exc:
            if self._error is not None:
                raise self._error
            if isinstance(exc, PartitionSyncTimeout):
                # Infrastructure failure (a partition worker died or missed
                # its slice barrier) — never convert into a model-level
                # CommandTimeout, which the watchdog would retry.
                raise
            if timeout_cycles is not None:
                raise CommandTimeout(
                    f"no response within timeout_cycles={timeout_cycles}",
                    dump=exc.dump,
                ) from exc
            raise
        if self._error is not None:
            raise self._error
        return self._decode()

    def _decode(self) -> Dict[str, object]:
        if self._spec is None or not self._spec.fields:
            return {"ok": True}
        return self._spec.unpack(self._response.data)

    @property
    def latency_cycles(self) -> Optional[int]:
        if self._response is None:
            return None
        return self._completed_cycle - self.submitted_cycle

    def _note_completion_cycle(self, cycle: int) -> None:
        self._completed_cycle = cycle


class FpgaHandle:
    """Open handle to the Beethoven runtime for one elaborated design."""

    def __init__(self, design, watchdog: Optional[WatchdogConfig] = None) -> None:
        self.design = design
        platform = design.platform
        self.discrete = platform.host.discrete
        self.allocator = make_allocator(
            self.discrete, platform.memory_base, platform.memory_bytes
        )
        wd = watchdog or getattr(design, "watchdog", None) or WatchdogConfig()
        self.server = RuntimeServer(
            design.mmio,
            platform.host,
            spans=getattr(design, "span_tracker", None),
            watchdog=wd,
            tracer=getattr(design, "tracer", None),
        )
        self.server.on_quarantine = self._mark_degraded
        #: Cores taken out of rotation by the watchdog.
        self.degraded_cores: Set[Tuple[int, int]] = set()
        #: FaultState of the compiled FaultPlan, when one was elaborated in.
        self.faults = getattr(design, "faults", None)
        design.sim.add(self.server)
        self.dma_cycles_spent = 0
        # uid -> {"ctx", "fut", "make_cb"} for every call() issued through
        # this handle.  The snapshot layer serialises in-flight commands by
        # uid; on restore (after the host-side setup has been replayed so
        # the uids line up) it resolves them back to the live context and
        # future and rebuilds the response callback via make_cb.
        self._calls: Dict[int, Dict[str, object]] = {}
        self._call_uid = 0
        self.server._host_calls = self._calls

    # ------------------------------------------------------------ memory API
    def malloc(self, n_bytes: int) -> RemotePtr:
        addr = self.allocator.malloc(n_bytes)
        return RemotePtr(self, addr, n_bytes)

    def free(self, ptr: RemotePtr) -> None:
        self.allocator.free(ptr.fpga_addr)

    def _store_write(self, addr: int, data: bytes) -> None:
        self.design.controller.store.write(addr, data)

    def _store_read(self, addr: int, length: int) -> bytes:
        return self.design.controller.store.read(addr, length)

    def copy_to_fpga(self, ptr: RemotePtr) -> None:
        """DMA host -> device (no-op coherence sync on embedded)."""
        self._store_write(ptr.fpga_addr, bytes(ptr.get_host_addr()))
        self._advance_dma(ptr.size)

    def copy_from_fpga(self, ptr: RemotePtr) -> None:
        """DMA device -> host."""
        data = self._store_read(ptr.fpga_addr, ptr.size)
        ptr.get_host_addr()[:] = data
        self._advance_dma(ptr.size)

    def _advance_dma(self, n_bytes: int) -> None:
        host = self.design.platform.host
        if not self.discrete or host.dma_bytes_per_cycle <= 0:
            return
        cycles = int(n_bytes / host.dma_bytes_per_cycle) + 1
        self.dma_cycles_spent += cycles
        for _ in range(cycles):
            self.design.sim.step()

    # ------------------------------------------------------------ processes
    def new_client(self, name: str = "") -> "ClientHandle":
        """A second process sharing this runtime (paper Section II-C2).

        Clients share the card's allocator state (held host-side, so their
        allocations never conflict) and are served round-robin by the
        runtime server's command arbitration.
        """
        self._next_client = getattr(self, "_next_client", 0) + 1
        return ClientHandle(self, self._next_client, name or f"client{self._next_client}")

    # ------------------------------------------------------------ degradation
    def _mark_degraded(self, key: Tuple[int, int]) -> None:
        self.degraded_cores.add(key)

    def _route_core(self, system, core_idx: int) -> int:
        """The preferred core, or the next healthy one of the same system."""
        n = len(system.cores)
        for k in range(n):
            idx = (core_idx + k) % n
            if (system.system_id, idx) not in self.degraded_cores:
                if k:
                    self.server.rerouted += 1
                    tracer = getattr(self.design, "tracer", None)
                    if tracer is not None:
                        tracer.record(
                            self.design.sim.cycle,
                            "watchdog",
                            "reroute",
                            {"from": (system.system_id, core_idx),
                             "to": (system.system_id, idx)},
                        )
                return idx
        raise CoreQuarantined(
            f"all {n} cores of system {system.config.name!r} are quarantined",
            key=(system.system_id, core_idx),
        )

    # ----------------------------------------------------------- command API
    def call(
        self,
        system_name: str,
        io_name: str,
        core_idx: int,
        _client: int = 0,
        _retryable: bool = True,
        _tenant: str = "",
        _batch: Optional[int] = None,
        **fields,
    ) -> ResponseHandle:
        """Send one custom command; returns a response future.

        ``_retryable=False`` marks the command non-idempotent: the watchdog
        will never re-issue it, and a timeout surfaces directly as a typed
        error on the future.  ``_tenant`` tags the command's span for
        per-tenant attribution and ``_batch`` groups compatible commands so
        the server amortises lock acquisition (both set by ``repro.serve``).
        """
        design = self.design
        system = next(
            (s for s in design.systems if s.config.name == system_name), None
        )
        if system is None:
            raise KeyError(f"no system {system_name!r}")
        if not 0 <= core_idx < len(system.cores):
            raise IndexError(
                f"core index {core_idx} out of range for {system_name!r} "
                f"({len(system.cores)} cores)"
            )
        core = system.cores[core_idx]
        io_index, io = next(
            (
                (i, io)
                for i, io in enumerate(core.ctx.ios)
                if io.command_spec.name == io_name
            ),
            (None, None),
        )
        if io is None:
            raise KeyError(f"no IO {io_name!r} on system {system_name!r}")
        handle = ResponseHandle(self, io.response_spec)
        ctx = CommandContext(
            key=(system.system_id, core_idx),
            label=io_name,
            retryable=_retryable,
        )
        ctx.resubmit = lambda: self._submit_command(
            system, io_index, io, core_idx, dict(fields), handle, ctx, _client,
            tenant=_tenant, batch=_batch,
        )
        ctx.on_error = handle._fail
        self._call_uid += 1
        ctx.uid = self._call_uid
        self._calls[ctx.uid] = {
            "ctx": ctx,
            "fut": handle,
            "make_cb": lambda: self._make_on_response(
                system, io_index, io, core_idx, dict(fields), handle, ctx,
                _client, _tenant, _batch,
            ),
        }
        self._submit_command(
            system, io_index, io, core_idx, dict(fields), handle, ctx, _client,
            tenant=_tenant, batch=_batch,
        )
        return handle

    def _submit_command(
        self, system, io_index, io, core_idx, fields, handle, ctx, client,
        tenant: str = "", batch: Optional[int] = None,
    ) -> None:
        """Issue (or re-issue) one command onto the next healthy core."""
        design = self.design
        routed = self._route_core(system, core_idx)
        ctx.key = (system.system_id, routed)
        chunks = io.command_spec.pack(fields, design.platform.addr_bits)
        on_response = self._make_on_response(
            system, io_index, io, core_idx, fields, handle, ctx, client,
            tenant, batch,
        )
        for i, (rs1, rs2) in enumerate(chunks):
            last = i == len(chunks) - 1
            inst = RoccInstruction(
                system_id=system.system_id,
                core_id=routed,
                funct7=io_index,
                rs1=rs1,
                rs2=rs2,
                xd=last,  # only the completing chunk expects a response
                rd=1,
            )
            self.server.submit(
                inst,
                on_response if last else None,
                design.sim.cycle,
                client=client,
                label=ctx.label,
                ctx=ctx if last else None,
                tenant=tenant,
                batch=batch,
            )

    def _make_on_response(
        self, system, io_index, io, core_idx, fields, handle, ctx, client,
        tenant: str = "", batch: Optional[int] = None,
    ) -> "Callable[[RoccResponse], None]":
        """Response callback for one logical command.

        Factored out of :meth:`_submit_command` so snapshot restore can
        rebuild a behaviourally identical callback for a command that was in
        flight at capture time: every closed-over value is retry-invariant
        (the routed core only affects the already-encoded command words and
        ``ctx.key``, both of which the snapshot carries explicitly).
        """
        design = self.design

        def on_response(resp: RoccResponse) -> None:
            faults = self.faults
            if faults is not None:
                poison = faults.take_poison(ctx.key)
                if poison:
                    # Detected corruption: the data this response summarises
                    # is suspect.  Re-run if allowed, else fail typed.
                    if (
                        ctx.retryable
                        and ctx.attempts - 1 < self.server.watchdog.max_retries
                    ):
                        ctx.attempts += 1
                        self.server.retries += 1
                        try:
                            self._submit_command(
                                system, io_index, io, core_idx, fields,
                                handle, ctx, client, tenant=tenant, batch=batch,
                            )
                        except Exception as exc:
                            handle._fail(exc)
                        return
                    handle._fail(
                        FaultedResponse(
                            f"command {ctx.label!r} on core {ctx.key} completed "
                            f"with {len(poison)} detected data fault(s)",
                            key=ctx.key,
                            attempts=ctx.attempts,
                            events=poison,
                        )
                    )
                    return
                if ctx.attempts > 1:
                    faults.note_recovery(
                        design.sim.cycle,
                        "runtime/handle",
                        f"{ctx.label} ok after {ctx.attempts} attempts",
                    )
            handle._note_completion_cycle(design.sim.cycle)
            handle._complete(resp)

        return on_response

    # ----------------------------------------------------------- snapshot
    def snapshot_state(self, fr) -> Dict[str, object]:
        """Host-side state for ``repro.snapshot``: allocator, degradation
        bookkeeping, and the outcome of every command issued so far.

        Futures are addressed by command uid — restore runs after the host
        setup has been *replayed* against a rebuilt design (recreating the
        same uids in the same order) and overwrites each future's outcome in
        place.  Host shadow buffers (:class:`RemotePtr`) are not captured;
        the replay rewrites them, and device memory is restored through the
        memory store's component state.
        """
        calls = {}
        for uid, rec in self._calls.items():
            fut = rec["fut"]
            calls[uid] = {
                "response": fr.freeze(fut._response),
                "error": fr.freeze(fut._error),
                "submitted_cycle": fut.submitted_cycle,
                "completed_cycle": getattr(fut, "_completed_cycle", None),
            }
        return {
            "allocator": fr.freeze_attrs(self.allocator),
            "degraded_cores": sorted(self.degraded_cores),
            "dma_cycles_spent": self.dma_cycles_spent,
            "next_client": getattr(self, "_next_client", 0),
            "calls": calls,
        }

    def restore_state(self, state: Dict[str, object], th) -> None:
        th.pair_attrs(self.allocator, state["allocator"])
        th.thaw_attrs(self.allocator, state["allocator"])
        self.degraded_cores.clear()
        self.degraded_cores.update(tuple(k) for k in state["degraded_cores"])
        self.dma_cycles_spent = state["dma_cycles_spent"]
        if state["next_client"]:
            self._next_client = state["next_client"]
        for uid, st in state["calls"].items():
            rec = self._calls.get(uid)
            if rec is None:
                th.unresolved += 1
                continue
            fut = rec["fut"]
            fut._response = th.thaw(st["response"])
            fut._error = th.thaw(st["error"])
            fut.submitted_cycle = st["submitted_cycle"]
            if st["completed_cycle"] is not None:
                fut._completed_cycle = st["completed_cycle"]
            if fut.done:
                # This outcome fired before the checkpoint: its callback
                # effects are already part of the restored state (metrics,
                # counters), so replay-registered callbacks must not fire
                # again.
                fut._callbacks = []

    # ------------------------------------------------------------- sim plumbing
    def run_until(self, predicate, max_cycles: int = 10_000_000) -> int:
        return self.design.sim.run(max_cycles, until=predicate)

    def run_cycles(self, n: int) -> None:
        for _ in range(n):
            self.design.sim.step()

    @property
    def cycle(self) -> int:
        return self.design.sim.cycle


class ClientHandle:
    """A process-local view of a shared :class:`FpgaHandle`.

    Allocations go through the shared (host-resident) allocator, so separate
    clients never receive overlapping device memory; commands are tagged
    with the client id and arbitrated fairly by the runtime server.

    **FIFO-per-client guarantee**: commands submitted through one client are
    dispatched onto the MMIO bus in exactly their submission order.  The
    server round-robins *between* clients but each client's queue is a strict
    FIFO, checked per dispatch (``runtime/server/fifo_violations`` stays 0).
    Per-client traffic counters are published under ``serve/client/<id>/``.
    """

    def __init__(self, handle: FpgaHandle, client_id: int, name: str) -> None:
        self._handle = handle
        self.client_id = client_id
        self.name = name
        #: Tenant this client fronts (set by the serving layer; spans carry it).
        self.tenant = ""
        self.submitted = Counter()
        self.completed = Counter()
        scope = handle.design.registry.scope(f"serve/client/{client_id}")
        scope.attach("submitted", self.submitted)
        scope.attach("completed", self.completed)
        scope.bind("in_flight", lambda: int(self.submitted) - int(self.completed))

    @property
    def in_flight(self) -> int:
        return int(self.submitted) - int(self.completed)

    def malloc(self, n_bytes: int) -> RemotePtr:
        return self._handle.malloc(n_bytes)

    def free(self, ptr: RemotePtr) -> None:
        self._handle.free(ptr)

    def copy_to_fpga(self, ptr: RemotePtr) -> None:
        self._handle.copy_to_fpga(ptr)

    def copy_from_fpga(self, ptr: RemotePtr) -> None:
        self._handle.copy_from_fpga(ptr)

    def call(
        self,
        system_name: str,
        io_name: str,
        core_idx: int,
        _retryable: bool = True,
        _batch: Optional[int] = None,
        **fields,
    ) -> ResponseHandle:
        fut = self._handle.call(
            system_name, io_name, core_idx,
            _client=self.client_id,
            _retryable=_retryable,
            _tenant=self.tenant,
            _batch=_batch,
            **fields,
        )
        self.submitted += 1
        fut.add_done_callback(lambda _f: self.completed.__iadd__(1))
        return fut


def bindings_for(handle: FpgaHandle, system_name: str):
    """Generated-style Python bindings: one callable per IO of the system.

    Mirrors the generated C++: ``b = bindings_for(h, "VectorAdd");
    resp = b.my_accel(core_idx, addend=…, vec_addr=…, n_eles=…)``.
    """

    class _Bindings:
        def __getattr__(self, io_name: str):
            def call(core_idx: int, **fields) -> ResponseHandle:
                return handle.call(system_name, io_name, core_idx, **fields)

            return call

    return _Bindings()
