"""The user-facing runtime library (paper Figure 3c and Section II-C3).

``FpgaHandle`` is the Python analogue of ``fpga_handle_t``: it owns the
allocator for the accelerator memory space, provides DMA routines between the
host and device domains, and sends commands through the runtime server.
Sending a command returns a :class:`ResponseHandle` future whose ``get()``
advances the simulation until the accelerator responds — the same blocking
semantics the generated C++ gives on real hardware.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.command.rocc import RoccInstruction, RoccResponse
from repro.runtime.allocator import make_allocator
from repro.runtime.server import RuntimeServer


class RemotePtr:
    """A device-memory allocation with a host-side shadow buffer.

    On discrete platforms the shadow models the host copy of the data and
    ``copy_to_fpga``/``copy_from_fpga`` move bytes across PCIe; on embedded
    platforms host and device share memory, so the "shadow" writes through
    immediately and the copies are coherence no-ops.
    """

    def __init__(self, handle: "FpgaHandle", fpga_addr: int, size: int) -> None:
        self._handle = handle
        self.fpga_addr = fpga_addr
        self.size = size
        self._host = bytearray(size)

    def get_host_addr(self) -> bytearray:
        """Host-side view (paper: ``mem.getHostAddr()``)."""
        return self._host

    def write(self, data: bytes, offset: int = 0) -> None:
        if offset + len(data) > self.size:
            raise ValueError("write past end of allocation")
        self._host[offset : offset + len(data)] = data
        if not self._handle.discrete:
            self._handle._store_write(self.fpga_addr + offset, bytes(data))

    def read(self, length: Optional[int] = None, offset: int = 0) -> bytes:
        length = self.size - offset if length is None else length
        if not self._handle.discrete:
            return self._handle._store_read(self.fpga_addr + offset, length)
        return bytes(self._host[offset : offset + length])

    def offset(self, n: int) -> int:
        """Device address at byte offset ``n`` (pointer arithmetic)."""
        if n < 0 or n > self.size:
            raise ValueError("offset outside allocation")
        return self.fpga_addr + n

    def __len__(self) -> int:
        return self.size


class ResponseHandle:
    """Future for one in-flight accelerator command."""

    def __init__(self, handle: "FpgaHandle", response_spec) -> None:
        self._handle = handle
        self._spec = response_spec
        self._response: Optional[RoccResponse] = None
        self.submitted_cycle = handle.design.sim.cycle

    def _complete(self, resp: RoccResponse) -> None:
        self._response = resp

    @property
    def done(self) -> bool:
        return self._response is not None

    def try_get(self) -> Optional[Dict[str, object]]:
        """Non-blocking check (paper: ``try_get``)."""
        if self._response is None:
            return None
        return self._decode()

    def get(self, max_cycles: int = 10_000_000) -> Dict[str, object]:
        """Block (advance simulation) until the response arrives."""
        self._handle.run_until(lambda: self._response is not None, max_cycles)
        return self._decode()

    def _decode(self) -> Dict[str, object]:
        if self._spec is None or not self._spec.fields:
            return {"ok": True}
        return self._spec.unpack(self._response.data)

    @property
    def latency_cycles(self) -> Optional[int]:
        if self._response is None:
            return None
        return self._completed_cycle - self.submitted_cycle

    def _note_completion_cycle(self, cycle: int) -> None:
        self._completed_cycle = cycle


class FpgaHandle:
    """Open handle to the Beethoven runtime for one elaborated design."""

    def __init__(self, design) -> None:
        self.design = design
        platform = design.platform
        self.discrete = platform.host.discrete
        self.allocator = make_allocator(
            self.discrete, platform.memory_base, platform.memory_bytes
        )
        self.server = RuntimeServer(
            design.mmio, platform.host, spans=getattr(design, "span_tracker", None)
        )
        design.sim.add(self.server)
        self.dma_cycles_spent = 0

    # ------------------------------------------------------------ memory API
    def malloc(self, n_bytes: int) -> RemotePtr:
        addr = self.allocator.malloc(n_bytes)
        return RemotePtr(self, addr, n_bytes)

    def free(self, ptr: RemotePtr) -> None:
        self.allocator.free(ptr.fpga_addr)

    def _store_write(self, addr: int, data: bytes) -> None:
        self.design.controller.store.write(addr, data)

    def _store_read(self, addr: int, length: int) -> bytes:
        return self.design.controller.store.read(addr, length)

    def copy_to_fpga(self, ptr: RemotePtr) -> None:
        """DMA host -> device (no-op coherence sync on embedded)."""
        self._store_write(ptr.fpga_addr, bytes(ptr.get_host_addr()))
        self._advance_dma(ptr.size)

    def copy_from_fpga(self, ptr: RemotePtr) -> None:
        """DMA device -> host."""
        data = self._store_read(ptr.fpga_addr, ptr.size)
        ptr.get_host_addr()[:] = data
        self._advance_dma(ptr.size)

    def _advance_dma(self, n_bytes: int) -> None:
        host = self.design.platform.host
        if not self.discrete or host.dma_bytes_per_cycle <= 0:
            return
        cycles = int(n_bytes / host.dma_bytes_per_cycle) + 1
        self.dma_cycles_spent += cycles
        for _ in range(cycles):
            self.design.sim.step()

    # ------------------------------------------------------------ processes
    def new_client(self, name: str = "") -> "ClientHandle":
        """A second process sharing this runtime (paper Section II-C2).

        Clients share the card's allocator state (held host-side, so their
        allocations never conflict) and are served round-robin by the
        runtime server's command arbitration.
        """
        self._next_client = getattr(self, "_next_client", 0) + 1
        return ClientHandle(self, self._next_client, name or f"client{self._next_client}")

    # ----------------------------------------------------------- command API
    def call(
        self, system_name: str, io_name: str, core_idx: int, _client: int = 0, **fields
    ) -> ResponseHandle:
        """Send one custom command; returns a response future."""
        design = self.design
        system = next(
            (s for s in design.systems if s.config.name == system_name), None
        )
        if system is None:
            raise KeyError(f"no system {system_name!r}")
        if not 0 <= core_idx < len(system.cores):
            raise IndexError(
                f"core index {core_idx} out of range for {system_name!r} "
                f"({len(system.cores)} cores)"
            )
        core = system.cores[core_idx]
        io_index, io = next(
            (
                (i, io)
                for i, io in enumerate(core.ctx.ios)
                if io.command_spec.name == io_name
            ),
            (None, None),
        )
        if io is None:
            raise KeyError(f"no IO {io_name!r} on system {system_name!r}")
        chunks = io.command_spec.pack(fields, design.platform.addr_bits)
        handle = ResponseHandle(self, io.response_spec)

        def on_response(resp: RoccResponse) -> None:
            handle._note_completion_cycle(design.sim.cycle)
            handle._complete(resp)

        for i, (rs1, rs2) in enumerate(chunks):
            last = i == len(chunks) - 1
            inst = RoccInstruction(
                system_id=system.system_id,
                core_id=core_idx,
                funct7=io_index,
                rs1=rs1,
                rs2=rs2,
                xd=last,  # only the completing chunk expects a response
                rd=1,
            )
            self.server.submit(
                inst,
                on_response if last else None,
                design.sim.cycle,
                client=_client,
                label=io_name,
            )
        return handle

    # ------------------------------------------------------------- sim plumbing
    def run_until(self, predicate, max_cycles: int = 10_000_000) -> int:
        return self.design.sim.run(max_cycles, until=predicate)

    def run_cycles(self, n: int) -> None:
        for _ in range(n):
            self.design.sim.step()

    @property
    def cycle(self) -> int:
        return self.design.sim.cycle


class ClientHandle:
    """A process-local view of a shared :class:`FpgaHandle`.

    Allocations go through the shared (host-resident) allocator, so separate
    clients never receive overlapping device memory; commands are tagged
    with the client id and arbitrated fairly by the runtime server.
    """

    def __init__(self, handle: FpgaHandle, client_id: int, name: str) -> None:
        self._handle = handle
        self.client_id = client_id
        self.name = name

    def malloc(self, n_bytes: int) -> RemotePtr:
        return self._handle.malloc(n_bytes)

    def free(self, ptr: RemotePtr) -> None:
        self._handle.free(ptr)

    def copy_to_fpga(self, ptr: RemotePtr) -> None:
        self._handle.copy_to_fpga(ptr)

    def copy_from_fpga(self, ptr: RemotePtr) -> None:
        self._handle.copy_from_fpga(ptr)

    def call(self, system_name: str, io_name: str, core_idx: int, **fields) -> ResponseHandle:
        return self._handle.call(
            system_name, io_name, core_idx, _client=self.client_id, **fields
        )


def bindings_for(handle: FpgaHandle, system_name: str):
    """Generated-style Python bindings: one callable per IO of the system.

    Mirrors the generated C++: ``b = bindings_for(h, "VectorAdd");
    resp = b.my_accel(core_idx, addend=…, vec_addr=…, n_eles=…)``.
    """

    class _Bindings:
        def __getattr__(self, io_name: str):
            def call(core_idx: int, **fields) -> ResponseHandle:
                return handle.call(system_name, io_name, core_idx, **fields)

            return call

    return _Bindings()
