"""Reusable simulation harnesses for tests and examples.

These helpers wire a handful of AXI master ports through a generated tree
network to a memory controller — the plumbing every unit test of a memory
primitive needs, and a useful starting point for users experimenting with the
substrates directly (the full framework does this wiring via
:class:`repro.core.build.BeethovenBuild`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.axi import AxiMonitor, AxiParams, AxiPort, MonitoredAxiPort
from repro.dram import DDR4_AWS_F1, DramTiming, MemoryController, MemoryStore
from repro.noc import TreeBuilder, TreeConfig
from repro.sim import Component, Simulator, Tracer


@dataclass
class MemoryTestbench:
    """A simulator with a DRAM controller and a network of master ports."""

    sim: Simulator
    controller: MemoryController
    monitor: AxiMonitor
    tracer: Tracer

    @property
    def store(self) -> MemoryStore:
        return self.controller.store

    def run(self, max_cycles: int, until=None) -> int:
        return self.sim.run(max_cycles, until=until)


def build_memory_testbench(
    master_ports: Sequence[AxiPort],
    slrs: Optional[Sequence[int]] = None,
    timing: DramTiming = DDR4_AWS_F1,
    tree_config: Optional[TreeConfig] = None,
    controller_params: Optional[AxiParams] = None,
    child_id_bits: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    fast_forward: bool = True,
    profile: bool = False,
    scheduling: Optional[str] = None,
) -> MemoryTestbench:
    """Wire ``master_ports`` through a tree network to a DRAM controller.

    ``scheduling`` picks the kernel schedule ("naive", "fast_forward",
    "selective" or "compiled"); by default the testbench runs the selective
    per-component scheduler (cycle-exact), or naive stepping when
    ``fast_forward=False``.
    Driving the master ports directly between ``run`` calls is safe under
    every schedule: each run entry re-wakes all components and adopts any
    staged pushes/pops.  ``profile`` enables the per-component wall-clock
    profiler (:func:`repro.obs.render_profile_report`).
    """
    tracer = tracer or Tracer()
    params = controller_params or AxiParams(beat_bytes=timing.col_bytes)
    slave_port = AxiPort(params, "mem", depth=8)
    monitor = AxiMonitor("mem", tracer)
    mport = MonitoredAxiPort(slave_port, monitor)
    controller = MemoryController(mport, timing)

    if scheduling is None:
        scheduling = "selective" if fast_forward else "naive"
    sim = Simulator(tracer=tracer, profile=profile, scheduling=scheduling)
    sim.add(controller)
    sim.add(monitor)
    for chan in slave_port.channels():
        sim.register_channel(chan)

    if slrs is None:
        slrs = [0] * len(master_ports)
    if child_id_bits is None:
        child_id_bits = max(p.params.id_bits for p in master_ports)
    builder = TreeBuilder(tree_config or TreeConfig(), master_ports[0].params)
    net = builder.build(list(zip(master_ports, slrs)), mport, child_id_bits)
    net.register_with(sim)
    for port in master_ports:
        for chan in port.channels():
            sim.register_channel(chan)
    return MemoryTestbench(sim, controller, monitor, tracer)


def drain(components: Sequence[Component], attr: str = "idle") -> bool:
    """True when every component reports idle."""
    return all(getattr(c, attr)() for c in components)
