"""Exporters: Chrome/Perfetto ``trace_event`` JSON and flat metric dumps.

The trace format is the Chrome trace-event JSON the Perfetto UI
(``ui.perfetto.dev``) and ``chrome://tracing`` both load: a
``{"traceEvents": [...]}`` object of ``"X"`` (complete) events with
microsecond timestamps.  We map one simulated cycle to one microsecond so
cycle arithmetic survives the round trip exactly.

Two sources feed the trace:

* closed :class:`~repro.sim.trace.Span` records (host-command lifecycles and
  their AXI-burst children, stitched by
  :class:`~repro.obs.spans.CommandSpanTracker`);
* the AXI monitor's :class:`~repro.axi.monitor.TxnRecord` list (every burst
  seen at the DDR boundary, whether or not a command claimed it).

Chrome's renderer nests same-thread ``"X"`` slices by containment, which
breaks when two bursts on one track merely *overlap*; the exporter therefore
runs a greedy interval colouring per track and spreads overlapping spans
across numbered lanes (one ``tid`` per lane), while true parent/child links
are preserved in ``args.parent``/``args.span_id``.
"""

from __future__ import annotations

import json
import warnings
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.sim.trace import Span, Tracer

#: One simulated cycle maps to one microsecond of trace time.
PID = 1


class TraceTruncationWarning(UserWarning):
    """The tracer's ring buffer wrapped: the exported trace is incomplete."""


def _assign_lanes(spans: Sequence[Span]) -> Dict[int, int]:
    """Greedy interval colouring: span_id -> lane, minimising lane count."""
    lanes: List[int] = []  # lane index -> end cycle of its last span
    out: Dict[int, int] = {}
    for span in sorted(spans, key=lambda s: (s.begin_cycle, s.end_cycle or 0)):
        end = span.end_cycle if span.end_cycle is not None else span.begin_cycle
        for i, busy_until in enumerate(lanes):
            if span.begin_cycle >= busy_until:
                lanes[i] = end
                out[span.span_id] = i
                break
        else:
            lanes.append(end)
            out[span.span_id] = len(lanes) - 1
    return out


def chrome_trace_events(
    tracer: Optional[Tracer] = None,
    monitors: Iterable = (),
    extra_events: Sequence[Dict[str, Any]] = (),
) -> List[Dict[str, Any]]:
    """Build the ``traceEvents`` list from spans and AXI monitor records."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID,
            "tid": 0,
            "args": {"name": "beethoven-sim"},
        }
    ]
    next_tid = 1
    thread_names: List = []  # (tid, display name)

    def add_track(display: str, spans: Sequence[Span]) -> None:
        nonlocal next_tid
        if not spans:
            return
        lane_of = _assign_lanes(spans)
        lane_tids: Dict[int, int] = {}
        for span in spans:
            lane = lane_of[span.span_id]
            tid = lane_tids.get(lane)
            if tid is None:
                tid = next_tid
                next_tid += 1
                lane_tids[lane] = tid
                thread_names.append(
                    (tid, display if lane == 0 else f"{display} #{lane + 1}")
                )
            args = dict(span.args)
            args["span_id"] = span.span_id
            if span.parent is not None:
                args["parent"] = span.parent
            events.append(
                {
                    "name": span.name,
                    "cat": "span",
                    "ph": "X",
                    "ts": span.begin_cycle,
                    "dur": max(span.duration or 0, 0),
                    "pid": PID,
                    "tid": tid,
                    "args": args,
                }
            )

    if tracer is not None:
        by_track: Dict[str, List[Span]] = {}
        for span in tracer.closed_spans():
            by_track.setdefault(span.track, []).append(span)
        for track in sorted(by_track):
            add_track(track, by_track[track])

    for monitor in monitors:
        recs = monitor.completed()
        if not recs:
            continue
        # Re-use the span lane machinery by viewing records as pseudo-spans.
        pseudo = [
            Span(
                span_id=i + 1,
                name=f"{rec.kind} burst",
                track=f"axi/{monitor.port_name}",
                begin_cycle=rec.issue_cycle,
                end_cycle=rec.complete_cycle,
                args={
                    "axi_id": rec.axi_id,
                    "addr": rec.addr,
                    "beats": rec.length,
                    "first_data_cycle": rec.first_data_cycle,
                },
            )
            for i, rec in enumerate(recs)
        ]
        add_track(f"axi/{monitor.port_name}", pseudo)

    events.extend(extra_events)

    for tid, display in thread_names:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PID,
                "tid": tid,
                "args": {"name": display},
            }
        )
    return events


def chrome_trace(
    tracer: Optional[Tracer] = None,
    monitors: Iterable = (),
    extra_events: Sequence[Dict[str, Any]] = (),
) -> Dict[str, Any]:
    other: Dict[str, Any] = {"clock": "1 cycle = 1us"}
    if tracer is not None and (tracer.dropped_events or tracer.dropped_spans):
        # Never let a wrapped ring buffer masquerade as a complete trace.
        other["dropped_events"] = tracer.dropped_events
        other["dropped_spans"] = tracer.dropped_spans
        warnings.warn(
            f"trace ring buffer wrapped: {tracer.dropped_events} event(s) and "
            f"{tracer.dropped_spans} span(s) dropped; exported trace is "
            "incomplete (raise Observability.max_events)",
            TraceTruncationWarning,
            stacklevel=2,
        )
    return {
        "traceEvents": chrome_trace_events(tracer, monitors, extra_events),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def export_chrome_trace(
    path: str,
    tracer: Optional[Tracer] = None,
    monitors: Iterable = (),
    extra_events: Sequence[Dict[str, Any]] = (),
) -> Dict[str, Any]:
    """Write a Perfetto-loadable trace JSON file; returns the trace object."""
    trace = chrome_trace(tracer, monitors, extra_events)
    with open(path, "w") as f:
        json.dump(trace, f)
    return trace


def validate_chrome_trace(trace: Any) -> List[str]:
    """Structural validation against the Chrome trace-event JSON schema.

    Returns a list of problems (empty = valid): well-formedness of the
    container, required fields per phase, non-negative integer timestamps
    and durations, and ``ts + dur`` plausibility.
    """
    problems: List[str] = []
    if isinstance(trace, dict):
        events = trace.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object lacks a 'traceEvents' list"]
    elif isinstance(trace, list):
        events = trace
    else:
        return ["trace must be a JSON object or array"]

    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            problems.append(f"{where}: missing phase 'ph'")
            continue
        if "name" not in ev:
            problems.append(f"{where}: missing 'name'")
        if ph == "M":
            continue  # metadata events carry no timestamps
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad 'ts' {ts!r}")
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad 'dur' {dur!r}")
    return problems


def export_metrics(path: str, registry, prefix: Optional[str] = None) -> Dict[str, Any]:
    """Write the registry's flat metric dump as JSON; returns the dump."""
    dump = registry.dump(prefix)
    with open(path, "w") as f:
        json.dump(dump, f, indent=2, sort_keys=True, default=float)
    return dump
