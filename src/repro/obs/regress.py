"""Bench-history tracking and trailing-baseline regression detection.

``tools/bench_history.py`` (the CLI over this module) appends each
``BENCH_*.json`` benchmark result to a JSONL history file, stamped with git
and source-tree provenance, and flags the latest run's perf metrics against
the mean of the trailing window of prior runs.

Design points:

* **JSONL, append-only** — one self-contained entry per line, so CI can
  persist the file through a cache and concatenation is merge-free.
* **Provenance per entry** — git SHA + dirty flag (best-effort: ``unknown``
  outside a checkout) and the :func:`repro.farm.code_salt` source-tree
  digest, so a flagged regression can always be traced to the code that
  produced it.
* **Direction-aware comparison** — benchmark JSON mixes higher-is-better
  throughput/speedup numbers with lower-is-better latencies and neutral
  configuration echoes; keys are classified by leaf-name convention and
  neutral keys are never gated on.
* **Warm-up rule** — with fewer than two history points there is no
  baseline, so the check warns and passes; CI gates only once the trailing
  window exists.
"""

from __future__ import annotations

import json
import subprocess
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Leaf-name fragments marking a metric where bigger is better.
_HIGHER_BETTER = (
    "speedup",
    "per_second",
    "rate",
    "fraction",
    "throughput",
    "goodput",
    "fairness",
)
#: Leaf names where smaller is better (latency-like).  Deterministic cycle
#: counts belong here: a cycle increase is a real simulated-perf regression.
#: Checked *before* the higher-better fragments so that a lower-better leaf
#: containing one of them (``rejection_rate`` contains ``rate``) classifies
#: correctly.
_LOWER_BETTER = (
    "wall_seconds",
    "cycles",
    "elapsed_cycles",
    "executed_ticks",
    "latency",
    "p50",
    "p90",
    "p99",
    "p999",
    "mean_latency",
    "mean_queue_wait",
    "rejection_rate",
    "sync_stall_cycles",
    "checkpoint_write_seconds",
    "restore_seconds",
)
#: Leaf names that are plain event counts, not perf metrics — excluded
#: before fragment matching because some collide with a fragment
#: (``rejected_by_reason.rate_limited`` contains ``rate``).
_NEUTRAL = ("rate_limited", "queue_full", "memory_budget", "restarts")


def flatten_numeric(obj: Any, prefix: str = "") -> Dict[str, float]:
    """Flatten nested dicts to ``a.b.c -> number``; non-numbers are dropped."""
    out: Dict[str, float] = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(value, path))
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)):
        out[prefix] = float(obj)
    return out


def metric_direction(key: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 not a perf metric.

    Lower-better names must match the leaf exactly (so ``cycles_per_second``
    never reads as a latency) and are checked first, because some contain a
    higher-better fragment (``rejection_rate`` contains ``rate``).
    Higher-better fragments are then matched anywhere in the dotted path
    (bench JSON nests e.g. ``speedup.compiled_vs_naive``).
    """
    leaf = key.rsplit(".", 1)[-1]
    if leaf in _LOWER_BETTER:
        return -1
    if leaf in _NEUTRAL:
        return 0
    if any(frag in key for frag in _HIGHER_BETTER):
        return 1
    return 0


def _git(*args: str) -> Optional[str]:
    try:
        proc = subprocess.run(
            ["git", *args], capture_output=True, text=True, timeout=10
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip()


def provenance() -> Dict[str, Any]:
    """Best-effort git + source-tree identity of the current checkout."""
    from repro.farm import code_salt

    sha = _git("rev-parse", "HEAD") or "unknown"
    status = _git("status", "--porcelain")
    return {
        "git_sha": sha,
        "git_dirty": bool(status) if status is not None else None,
        "code_salt": code_salt(),
    }


def history_entry(bench: Dict[str, Any], name: str) -> Dict[str, Any]:
    """One JSONL history record for a benchmark result object."""
    entry = {
        "recorded_unix": time.time(),
        "bench": name,
        "metrics": flatten_numeric(bench),
    }
    entry.update(provenance())
    return entry


def append_history(history_path: str, bench_path: str, name: Optional[str] = None) -> Dict[str, Any]:
    """Append ``bench_path``'s result to the JSONL history; returns the entry."""
    with open(bench_path) as f:
        bench = json.load(f)
    if name is None:
        stem = bench_path.rsplit("/", 1)[-1]
        name = stem[len("BENCH_") :] if stem.startswith("BENCH_") else stem
        name = name.rsplit(".", 1)[0]
    entry = history_entry(bench, name)
    with open(history_path, "a") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(history_path: str, name: Optional[str] = None) -> List[Dict[str, Any]]:
    """Parse the JSONL history (missing file -> empty); optionally filter."""
    entries: List[Dict[str, Any]] = []
    try:
        with open(history_path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # tolerate a torn tail line from a killed run
                if name is None or entry.get("bench") == name:
                    entries.append(entry)
    except FileNotFoundError:
        pass
    return entries


def check_regressions(
    entries: Iterable[Dict[str, Any]],
    window: int = 5,
    tolerance: float = 0.2,
) -> Tuple[bool, List[Dict[str, Any]], int]:
    """Compare the newest entry against the trailing-window mean.

    Returns ``(ok, findings, n_baseline)``: ``ok`` is False only when a perf
    metric moved against its direction by more than ``tolerance`` relative to
    the baseline mean.  ``n_baseline == 0`` means no verdict is possible (the
    warm-up case); callers must treat that as a pass-with-warning.
    """
    entries = list(entries)
    if len(entries) < 2:
        return True, [], 0
    latest = entries[-1]
    baseline = entries[-1 - window : -1]
    findings: List[Dict[str, Any]] = []
    latest_metrics = latest.get("metrics", {})
    for key, value in sorted(latest_metrics.items()):
        direction = metric_direction(key)
        if direction == 0:
            continue
        samples = [
            e["metrics"][key]
            for e in baseline
            if key in e.get("metrics", {})
        ]
        if not samples:
            continue
        mean = sum(samples) / len(samples)
        if mean == 0:
            continue
        ratio = value / mean
        regressed = (
            ratio < 1.0 - tolerance if direction > 0 else ratio > 1.0 + tolerance
        )
        if regressed:
            findings.append(
                {
                    "metric": key,
                    "latest": value,
                    "baseline_mean": mean,
                    "ratio": ratio,
                    "direction": "higher-better" if direction > 0 else "lower-better",
                }
            )
    return not findings, findings, len(baseline)


def render_check(
    ok: bool, findings: List[Dict[str, Any]], n_baseline: int, name: str
) -> str:
    """Human summary of one :func:`check_regressions` verdict."""
    if n_baseline == 0:
        return (
            f"bench-history[{name}]: fewer than 2 history points — "
            "no baseline yet, skipping regression gate (warn-only run)"
        )
    if ok:
        return (
            f"bench-history[{name}]: OK against trailing {n_baseline}-run baseline"
        )
    lines = [
        f"bench-history[{name}]: {len(findings)} regression(s) vs "
        f"trailing {n_baseline}-run baseline:"
    ]
    for f in findings:
        lines.append(
            f"  {f['metric']}: {f['latest']:.4g} vs baseline mean "
            f"{f['baseline_mean']:.4g} ({f['ratio']:.2f}x, {f['direction']})"
        )
    return "\n".join(lines)
