"""Cycle attribution: command critical paths and resource contention.

The span tracker (:mod:`repro.obs.spans`) records *that* a host command took
N cycles; this module explains *why*.  It combines three deterministic data
sources — the command span tree, the AXI monitor's DDR-boundary
:class:`~repro.axi.monitor.TxnRecord` timeline, and the contention counters
the DRAM/NoC/memory models keep — into an exact decomposition of every
command's end-to-end latency plus a system-wide bottleneck report.

Segment taxonomy (``SEGMENTS``), per command, mutually exclusive and
collectively exhaustive over ``[root.begin, root.end)``:

``queue_wait``        host enqueue -> runtime server wins the MMIO lock
``dispatch``          MMIO word serialisation at the server
``cmd_noc``           command in flight from server to core adapter
``core_compute``      execute window with no AXI burst outstanding
``mem_noc_request``   oldest outstanding burst travelling master -> DDR
``mem_dram_queue``    oldest burst enqueued at the controller, pre-data
``mem_dram_service``  oldest burst streaming data at the DDR boundary
``mem_noc_return``    oldest burst's data/response travelling DDR -> master
``mem_unmatched``     burst span with no DDR record (e.g. truncated trace)
``response``          response packed -> host polls completion

Exactness contract: segment boundaries are clamped monotonic inside the root
span, and the execute window is swept over *elementary intervals* (every
burst phase boundary splits the timeline) with oldest-burst-wins arbitration,
so ``sum(segments.values()) == root.duration`` holds for every command — the
acceptance bar for the bottleneck tool.  All inputs (spans, monitor records,
contention counters) are stable across the four scheduling modes, so
attribution is scheduling-mode-identical; ``tests/test_fast_forward.py``
proves this bit-for-bit.

The DRAM-service split by row outcome (hit / activate / precharge /
turnaround / refresh) is computed at *report* level from the controller's
column counters and a :class:`~repro.dram.timing.DramTiming`, because the
per-cycle service segment does not know which column it overlapped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sim.trace import Span, Tracer

#: Ordered segment taxonomy; every CommandPath carries exactly these keys.
SEGMENTS = (
    "queue_wait",
    "dispatch",
    "cmd_noc",
    "core_compute",
    "mem_noc_request",
    "mem_dram_queue",
    "mem_dram_service",
    "mem_noc_return",
    "mem_unmatched",
    "response",
)

#: Bottleneck groups: which segments indict which resource.
SEGMENT_GROUPS = {
    "host": ("queue_wait", "dispatch", "response"),
    "noc": ("cmd_noc", "mem_noc_request", "mem_noc_return"),
    "dram": ("mem_dram_queue", "mem_dram_service"),
    "compute": ("core_compute",),
    "other": ("mem_unmatched",),
}


@dataclass
class CommandPath:
    """One command's latency decomposition; segments sum to ``end - begin``."""

    span_id: int
    label: str
    track: str
    begin: int
    end: int
    segments: Dict[str, int] = field(default_factory=dict)
    #: Serving-layer tenant tag ("" for untagged commands).
    tenant: str = ""

    @property
    def latency(self) -> int:
        return self.end - self.begin


def _match_records(spans: List[Span], monitors: Iterable) -> Dict[int, Any]:
    """FIFO-match axi burst spans to monitor TxnRecords.

    Neither side carries the other's identity (the RoCC/AXI encodings have no
    span-id field), but both sides observe the same per-``(kind, addr,
    length)`` burst stream in issue order: the span opens when the master
    pushes AR/AW and the record is appended when the same request reaches the
    DDR boundary, and the fabric preserves per-master order.  Per-key FIFOs
    therefore pair them exactly.  Every axi span in the trace participates
    (not just command-parented ones) so the FIFOs stay aligned.
    """
    fifos: Dict[Tuple[str, int, int], List[Any]] = {}
    for monitor in monitors:
        for rec in monitor.records:
            fifos.setdefault((rec.kind, rec.addr, rec.length), []).append(rec)
    heads: Dict[Tuple[str, int, int], int] = {}
    out: Dict[int, Any] = {}
    axi_spans = sorted(
        (s for s in spans if s.name.startswith("axi:")),
        key=lambda s: (s.begin_cycle, s.span_id),
    )
    for span in axi_spans:
        kind = span.name[len("axi:") :]
        key = (kind, span.args.get("addr"), span.args.get("beats"))
        queue = fifos.get(key)
        pos = heads.get(key, 0)
        if queue is not None and pos < len(queue):
            out[span.span_id] = queue[pos]
            heads[key] = pos + 1
    return out


def _clamp_chain(lo: int, hi: int, *points: Optional[int]) -> List[int]:
    """Clamp ``points`` into ``[lo, hi]`` and force them monotonic."""
    out: List[int] = []
    cur = lo
    for p in points:
        if p is None:
            p = cur
        p = max(cur, min(p, hi))
        out.append(p)
        cur = p
    return out


def _burst_phases(span: Span, rec, lo: int, hi: int) -> List[Tuple[int, int, str]]:
    """Phase intervals of one burst, clamped into the execute window."""
    b = max(lo, min(span.begin_cycle, hi))
    e = max(b, min(span.end_cycle if span.end_cycle is not None else hi, hi))
    if rec is None or rec.complete_cycle is None:
        return [(b, e, "mem_unmatched")] if e > b else []
    first = rec.first_data_cycle
    t1, t2, t3 = _clamp_chain(
        b, e, rec.issue_cycle, first if first is not None else rec.issue_cycle,
        rec.complete_cycle,
    )
    phases = [
        (b, t1, "mem_noc_request"),
        (t1, t2, "mem_dram_queue"),
        (t2, t3, "mem_dram_service"),
        (t3, e, "mem_noc_return"),
    ]
    return [(a, z, seg) for a, z, seg in phases if z > a]


def _sweep_execute_window(
    lo: int,
    hi: int,
    bursts: List[Tuple[Span, List[Tuple[int, int, str]]]],
    segments: Dict[str, int],
) -> None:
    """Attribute every cycle of ``[lo, hi)`` to exactly one segment.

    Elementary-interval sweep: all burst begin/end and phase boundaries split
    the window; each elementary interval belongs to the *oldest* burst open
    over it (ties by span id), in whatever phase that burst is in there, or
    to ``core_compute`` when no burst is open.  Oldest-wins matches the
    critical-path intuition: the command cannot retire before its oldest
    outstanding burst, so that burst's phase is the blocking resource.
    """
    if hi <= lo:
        return
    points = {lo, hi}
    for span, phases in bursts:
        for a, z, _ in phases:
            points.add(a)
            points.add(z)
    marks = sorted(p for p in points if lo <= p <= hi)
    for a, z in zip(marks, marks[1:]):
        if z <= a:
            continue
        best = None  # (begin, span_id, phases)
        for span, phases in bursts:
            if phases and phases[0][0] <= a and phases[-1][1] >= z:
                key = (phases[0][0], span.span_id)
                if best is None or key < best[0]:
                    best = (key, phases)
        if best is None:
            segments["core_compute"] += z - a
            continue
        for pa, pz, seg in best[1]:
            if pa <= a and z <= pz:
                segments[seg] += z - a
                break
        else:  # pragma: no cover - boundaries include all phase edges
            segments["mem_unmatched"] += z - a


def extract_command_paths(
    tracer: Optional[Tracer], monitors: Iterable = ()
) -> List[CommandPath]:
    """Decompose every closed ``cmd:*`` root span into named segments."""
    if tracer is None:
        return []
    spans = list(tracer.span_log)
    by_parent: Dict[int, List[Span]] = {}
    for span in spans:
        if span.parent is not None:
            by_parent.setdefault(span.parent, []).append(span)
    rec_of = _match_records(spans, monitors)

    paths: List[CommandPath] = []
    for root in spans:
        if root.parent is not None or not root.name.startswith("cmd:"):
            continue
        if root.end_cycle is None:
            continue
        b, e = root.begin_cycle, root.end_cycle
        children = by_parent.get(root.span_id, [])
        dispatch = next((c for c in children if c.name == "dispatch"), None)
        execute = next((c for c in children if c.name == "execute"), None)
        axi_children = [c for c in children if c.name.startswith("axi:")]

        d0, d1 = _clamp_chain(
            b,
            e,
            dispatch.begin_cycle if dispatch else b,
            dispatch.end_cycle if dispatch else b,
        )
        # A command with no observed execute window books the remainder as
        # in-flight toward the core (cmd_noc) and a zero response segment.
        x0, x1 = _clamp_chain(
            d1,
            e,
            execute.begin_cycle if execute else e,
            execute.end_cycle if execute else e,
        )
        segments = {seg: 0 for seg in SEGMENTS}
        segments["queue_wait"] = d0 - b
        segments["dispatch"] = d1 - d0
        segments["cmd_noc"] = x0 - d1
        segments["response"] = e - x1
        bursts = []
        for child in axi_children:
            phases = _burst_phases(child, rec_of.get(child.span_id), x0, x1)
            if phases:
                bursts.append((child, phases))
        _sweep_execute_window(x0, x1, bursts, segments)
        paths.append(
            CommandPath(
                span_id=root.span_id,
                label=root.name[len("cmd:") :],
                track=root.track,
                begin=b,
                end=e,
                segments=segments,
                tenant=str(root.args.get("tenant", "")),
            )
        )
    return paths


def segment_totals(paths: Iterable[CommandPath]) -> Dict[str, int]:
    """Sum each segment over ``paths``; keys are exactly ``SEGMENTS``."""
    totals = {seg: 0 for seg in SEGMENTS}
    for path in paths:
        for seg, cycles in path.segments.items():
            totals[seg] += cycles
    return totals


def tenant_rollup(paths: Iterable[CommandPath]) -> Dict[str, Dict[str, Any]]:
    """Per-tenant attribution: same segment taxonomy, grouped by tenant tag.

    Commands without a tenant tag (plain :class:`FpgaHandle` traffic) roll up
    under ``""``; callers rendering the result usually label that bucket
    "untagged".  Shares are of the tenant's own total latency, so a tenant's
    bottleneck verdict is independent of how much traffic it sent.
    """
    by_tenant: Dict[str, List[CommandPath]] = {}
    for path in paths:
        by_tenant.setdefault(path.tenant, []).append(path)
    out: Dict[str, Dict[str, Any]] = {}
    for tenant in sorted(by_tenant):
        tpaths = by_tenant[tenant]
        totals = segment_totals(tpaths)
        total_latency = sum(p.latency for p in tpaths)
        groups = {
            name: sum(totals[seg] for seg in segs)
            for name, segs in SEGMENT_GROUPS.items()
        }
        out[tenant] = {
            "commands": len(tpaths),
            "total_latency_cycles": total_latency,
            "mean_latency_cycles": (
                total_latency / len(tpaths) if tpaths else 0.0
            ),
            "segments": {
                seg: {
                    "cycles": totals[seg],
                    "share": (
                        totals[seg] / total_latency if total_latency else 0.0
                    ),
                }
                for seg in SEGMENTS
            },
            "bottleneck": (
                max(groups, key=lambda g: (groups[g], g))
                if total_latency
                else None
            ),
        }
    return out


# --------------------------------------------------------------- contention
_DRAM_CHANNEL_KEYS = (
    "bus_cycles",
    "read_cols",
    "write_cols",
    "row_hits",
    "row_misses",
    "row_conflicts",
    "queue_wait_cycles",
    "activations",
    "refreshes",
    "turnarounds",
)
_TLP_STALL_KEYS = (
    "stall_gap_cycles",
    "stall_inflight_cycles",
    "stall_buffer_cycles",
    "stall_backpressure_cycles",
)


def contention_summary(metrics: Dict[str, Any], cycles: int) -> Dict[str, Any]:
    """Roll the models' contention counters into per-resource summaries.

    ``metrics`` is a flat registry dump (``registry.dump()``).  The scan is
    key-suffix based so it works for any design shape: DRAM channels under
    ``dram/``, NoC nodes under ``noc/.../stall_<ch>_cycles``, and the
    Reader/Writer TLP engines under ``reader/``/``writer/``.
    """
    dram = {k: 0 for k in _DRAM_CHANNEL_KEYS}
    banks: Dict[str, Dict[str, int]] = {}
    noc_stalls: Dict[str, int] = {}
    tlp = {"reader": dict.fromkeys(_TLP_STALL_KEYS, 0),
           "writer": dict.fromkeys(_TLP_STALL_KEYS, 0)}
    for path, value in metrics.items():
        parts = path.split("/")
        leaf = parts[0] if len(parts) == 1 else parts[-1]
        root = parts[0]
        if root == "dram":
            if len(parts) >= 2 and parts[-2].startswith("bank"):
                banks.setdefault(parts[-2], {})[leaf] = int(value)
            elif leaf in dram:
                dram[leaf] += int(value)
        elif root == "noc" and leaf.startswith("stall_") and leaf.endswith("_cycles"):
            ch = leaf[len("stall_") : -len("_cycles")]
            noc_stalls[ch] = noc_stalls.get(ch, 0) + int(value)
        elif root in tlp and leaf in _TLP_STALL_KEYS:
            tlp[root][leaf] += int(value)

    accesses = dram["row_hits"] + dram["row_misses"]
    cols = dram["read_cols"] + dram["write_cols"]
    out = {
        "cycles": cycles,
        "dram": {
            **dram,
            "bus_utilization": dram["bus_cycles"] / cycles if cycles else 0.0,
            "row_hit_rate": dram["row_hits"] / accesses if accesses else 0.0,
            "mean_queue_wait": dram["queue_wait_cycles"] / cols if cols else 0.0,
            "banks": {k: banks[k] for k in sorted(banks)},
        },
        "noc": {
            "stall_cycles": {k: noc_stalls[k] for k in sorted(noc_stalls)},
            "stall_cycles_total": sum(noc_stalls.values()),
        },
        "tlp": tlp,
    }
    return out


def dram_service_split(
    contention: Dict[str, Any], timing
) -> Dict[str, Dict[str, float]]:
    """Report-level split of DRAM service time by row-buffer outcome.

    Uses the controller's column/activation counters and a
    :class:`~repro.dram.timing.DramTiming`: column data transfer is
    ``bus_cycles``, each activation pays ``t_rcd``, each row conflict adds a
    ``t_rp`` precharge, each direction turnaround ``t_bus_turn`` and each
    refresh ``t_rfc``.  Shares are of the summed model, not of wall-clock —
    banks overlap these costs in time.
    """
    dram = contention["dram"]
    parts = {
        "column_transfer": float(dram["bus_cycles"]),
        "activate": float(dram["activations"] * timing.t_rcd),
        "precharge": float(dram["row_conflicts"] * timing.t_rp),
        "turnaround": float(dram["turnarounds"] * timing.t_bus_turn),
        "refresh": float(dram["refreshes"] * timing.t_rfc),
    }
    total = sum(parts.values())
    return {
        name: {"cycles": v, "share": v / total if total else 0.0}
        for name, v in parts.items()
    }


# ------------------------------------------------------------------ reports
def attribution_report(
    tracer: Optional[Tracer] = None,
    monitors: Iterable = (),
    registry=None,
    cycles: int = 0,
    timing=None,
    by_tenant: bool = False,
) -> Dict[str, Any]:
    """The full attribution rollup, JSON-serialisable.

    Combines per-command critical paths, segment totals/shares, the grouped
    bottleneck verdict and the contention summary.  ``timing`` (a
    :class:`~repro.dram.timing.DramTiming`) additionally enables the DRAM
    service split by row outcome.  ``by_tenant=True`` adds a ``tenants`` key
    with the same segment taxonomy rolled up per serving-layer tenant tag.
    """
    paths = extract_command_paths(tracer, monitors)
    totals = segment_totals(paths)
    total_latency = sum(p.latency for p in paths)
    n = len(paths)
    groups = {
        name: sum(totals[seg] for seg in segs)
        for name, segs in SEGMENT_GROUPS.items()
    }
    bottleneck = max(groups, key=lambda g: (groups[g], g)) if total_latency else None
    metrics = registry.dump() if registry is not None else {}
    contention = contention_summary(metrics, cycles)
    report: Dict[str, Any] = {
        "commands": n,
        "total_latency_cycles": total_latency,
        "mean_latency_cycles": total_latency / n if n else 0.0,
        "segments": {
            seg: {
                "cycles": totals[seg],
                "share": totals[seg] / total_latency if total_latency else 0.0,
            }
            for seg in SEGMENTS
        },
        "groups": {
            name: {
                "cycles": cyc,
                "share": cyc / total_latency if total_latency else 0.0,
            }
            for name, cyc in groups.items()
        },
        "bottleneck": bottleneck,
        "contention": contention,
    }
    if timing is not None:
        report["dram_service_split"] = dram_service_split(contention, timing)
    if by_tenant:
        report["tenants"] = tenant_rollup(paths)
    return report


def render_attribution_report(report: Dict[str, Any]) -> str:
    """Human rendering of :func:`attribution_report`."""
    n = report["commands"]
    lines = [
        f"attribution: {n} command(s), "
        f"mean latency {report['mean_latency_cycles']:.1f} cycles"
    ]
    if not n:
        lines.append("  (no closed command spans — is tracing enabled?)")
        return "\n".join(lines)
    lines.append("  critical-path segments (mean cycles per command, share):")
    for seg in SEGMENTS:
        s = report["segments"][seg]
        if not s["cycles"]:
            continue
        lines.append(
            f"    {seg:<18} {s['cycles'] / n:>10.1f}  {s['share']:>6.1%}"
        )
    bn = report["bottleneck"]
    if bn is not None:
        share = report["groups"][bn]["share"]
        lines.append(f"  bottleneck: {bn}-bound ({share:.0%} of mean critical path)")
    dram = report["contention"]["dram"]
    if dram["bus_cycles"]:
        lines.append(
            f"  dram: bus utilization {dram['bus_utilization']:.1%}, "
            f"row-hit rate {dram['row_hit_rate']:.1%}, "
            f"mean queue wait {dram['mean_queue_wait']:.1f} cycles, "
            f"{dram['row_conflicts']} row conflict(s)"
        )
    split = report.get("dram_service_split")
    if split:
        shown = ", ".join(
            f"{k} {v['share']:.0%}" for k, v in split.items() if v["cycles"]
        )
        if shown:
            lines.append(f"  dram service split: {shown}")
    noc = report["contention"]["noc"]
    if noc["stall_cycles_total"]:
        per = ", ".join(
            f"{ch}={c}" for ch, c in noc["stall_cycles"].items() if c
        )
        lines.append(f"  noc stall-on-full cycles: {per}")
    for engine in ("reader", "writer"):
        stalls = report["contention"]["tlp"][engine]
        total = sum(stalls.values())
        if total:
            per = ", ".join(
                f"{k[len('stall_'):-len('_cycles')]}={v}"
                for k, v in stalls.items()
                if v
            )
            lines.append(f"  {engine} TLP stalls: {per}")
    return "\n".join(lines)


def counter_track_events(monitors: Iterable) -> List[Dict[str, Any]]:
    """Perfetto counter tracks: outstanding DDR bursts over time, per kind.

    Emits Chrome trace-event ``"C"`` phase events derived from the monitors'
    issue/complete cycles; merged into the span trace via ``chrome_trace``'s
    ``extra_events`` so the Perfetto timeline shows queue pressure alongside
    the command spans.
    """
    from repro.obs.export import PID

    events: List[Dict[str, Any]] = []
    for monitor in monitors:
        for kind in ("read", "write"):
            deltas: Dict[int, int] = {}
            for rec in monitor.records:
                if rec.kind != kind or rec.complete_cycle is None:
                    continue
                deltas[rec.issue_cycle] = deltas.get(rec.issue_cycle, 0) + 1
                deltas[rec.complete_cycle] = deltas.get(rec.complete_cycle, 0) - 1
            if not deltas:
                continue
            name = f"ddr {kind} outstanding ({monitor.port_name})"
            value = 0
            for cycle in sorted(deltas):
                value += deltas[cycle]
                events.append(
                    {
                        "name": name,
                        "cat": "counter",
                        "ph": "C",
                        "ts": cycle,
                        "pid": PID,
                        "tid": 0,
                        "args": {"value": value},
                    }
                )
    return events
