"""The single switch for the instrumentation layer.

``Observability`` is the one object a caller hands to
:class:`~repro.core.build.BeethovenBuild` (or
:class:`~repro.core.elaboration.ElaboratedDesign`) to control every part of
the layer at once: metric collection is always on (the registry is cheap
enough to keep enabled by default), while span tracing, event ring-buffer
caps, and the wall-clock profiler are opt-in through this config.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class Observability:
    """Configuration for the unified instrumentation layer.

    ``enabled``
        Master switch for span tracing and command-lifetime tracking.  Flat
        metrics are collected regardless (they ride on fields the models keep
        anyway); this gates the per-command span machinery and exporters.
    ``profile``
        Turn on the simulator's per-component wall-clock self-time profiler
        (:func:`repro.obs.profiler.render_profile_report`).
    ``max_events``
        Optional ring-buffer cap shared by the tracer's event and span
        stores; evictions are surfaced as ``trace/dropped_events`` /
        ``trace/dropped_spans`` metrics.
    """

    enabled: bool = True
    profile: bool = True
    max_events: Optional[int] = None

    @classmethod
    def off(cls) -> "Observability":
        """Metrics-only default: no span tracking, no profiler."""
        return cls(enabled=False, profile=False)
