"""Unified instrumentation layer: metrics, command spans, exporters, profiler.

See DESIGN.md ("Observability") for the namespace scheme and span model.
"""

from repro.obs.config import Observability
from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    export_chrome_trace,
    export_metrics,
    validate_chrome_trace,
)
from repro.obs.profiler import profile_summary, render_profile_report
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    BoundMetric,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    MetricScope,
)
from repro.obs.spans import CommandSpanTracker

__all__ = [
    "BoundMetric",
    "CommandSpanTracker",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MetricScope",
    "Observability",
    "chrome_trace",
    "chrome_trace_events",
    "export_chrome_trace",
    "export_metrics",
    "profile_summary",
    "render_profile_report",
    "validate_chrome_trace",
]
