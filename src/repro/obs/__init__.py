"""Unified instrumentation layer: metrics, command spans, exporters, profiler.

See DESIGN.md ("Observability") for the namespace scheme and span model.
"""

from repro.obs.attribution import (
    SEGMENTS,
    CommandPath,
    attribution_report,
    contention_summary,
    counter_track_events,
    extract_command_paths,
    render_attribution_report,
    segment_totals,
    tenant_rollup,
)
from repro.obs.config import Observability
from repro.obs.export import (
    TraceTruncationWarning,
    chrome_trace,
    chrome_trace_events,
    export_chrome_trace,
    export_metrics,
    validate_chrome_trace,
)
from repro.obs.profiler import profile_summary, render_profile_report
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    DEFAULT_PERCENTILES,
    BoundMetric,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    MetricScope,
)
from repro.obs.spans import CommandSpanTracker

__all__ = [
    "BoundMetric",
    "CommandPath",
    "CommandSpanTracker",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_PERCENTILES",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MetricScope",
    "Observability",
    "SEGMENTS",
    "TraceTruncationWarning",
    "attribution_report",
    "chrome_trace",
    "chrome_trace_events",
    "contention_summary",
    "counter_track_events",
    "export_chrome_trace",
    "export_metrics",
    "extract_command_paths",
    "profile_summary",
    "render_attribution_report",
    "render_profile_report",
    "segment_totals",
    "tenant_rollup",
    "validate_chrome_trace",
]
