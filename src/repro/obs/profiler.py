"""Per-component wall-clock self-time reporting for the simulation kernel.

The simulator (constructed with ``profile=True``) times every component's
``tick`` individually and books the channel-commit sweep and the
fast-forward hint scan under ``(kernel)/...`` buckets, so the report cleanly
separates model cost from kernel overhead.  The profile is *skip-aware*:
cycles elided by event-skipping never tick components, so their absence from
the call counts is exactly the speedup fast-forward bought — the report
shows calls alongside simulated cycles to make that visible.
"""

from __future__ import annotations

from typing import Dict, List


def profile_summary(sim) -> List[Dict[str, float]]:
    """Per-component self-time rows, sorted by total time descending.

    Each row: ``name``, ``total_ns``, ``calls``, ``mean_ns`` (per call), and
    ``share`` of the summed profiled time.
    """
    rows = []
    grand_total = sum(ns for ns, _ in sim.tick_profile.values()) or 1
    for name, (ns, calls) in sim.tick_profile.items():
        rows.append(
            {
                "name": name,
                "total_ns": ns,
                "calls": calls,
                "mean_ns": ns / calls if calls else 0.0,
                "share": ns / grand_total,
            }
        )
    rows.sort(key=lambda r: r["total_ns"], reverse=True)
    return rows


def render_profile_report(sim, top: int = 0) -> str:
    """Human-readable profile table; companion to ``render_skip_report``.

    ``top`` limits the row count (0 = all).  Raises nothing on an unprofiled
    simulator — it simply reports that no samples were collected.
    """
    rows = profile_summary(sim)
    if not rows:
        return (
            f"sim {sim.name!r}: no profile samples "
            "(construct the Simulator with profile=True)"
        )
    if top:
        rows = rows[:top]
    lines = [
        f"sim {sim.name!r} self-time profile "
        f"({sim.cycle} cycles simulated, {sim.cycle - sim.cycles_skipped} stepped):",
        f"{'component':<42} {'total ms':>10} {'calls':>10} {'ns/call':>9} {'share':>7}",
    ]
    for r in rows:
        lines.append(
            f"{r['name']:<42} {r['total_ns'] / 1e6:>10.3f} {r['calls']:>10} "
            f"{r['mean_ns']:>9.0f} {r['share']:>6.1%}"
        )
    return "\n".join(lines)
