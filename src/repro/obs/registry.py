"""The metric registry: one namespace for every statistic the models keep.

Before this layer existed each model grew its own ad-hoc stat fields
(``ChannelQueue.total_pushed``, ``DramController.stats``, the runtime
server's lock-wait samples, ...) and every analysis reached into model
internals to read them.  The registry replaces that with a single
hierarchically-namespaced (``system/core/port``) collection of *typed*
metrics:

* :class:`Counter` — monotonically increasing event count.  Counters behave
  like numbers in comparisons (``ctr == 4``) so model code and tests keep
  reading naturally, and support ``+=`` so hot paths stay one line.
* :class:`Gauge` — a point-in-time value (``set``/``add``).
* :class:`Histogram` — fixed upper-bound buckets plus count/total, cheap
  enough for per-command latency samples.
* bound views (:meth:`MetricScope.bind`) — zero-overhead adapters over an
  existing plain field, read lazily at dump time.  The simulation kernel's
  hottest counters (per-cycle channel occupancy accumulation) use these so
  instrumentation stays on by default without slowing the kernel.

Metrics are *owned by the components* and adopted into the registry when the
component is registered with a :class:`~repro.sim.Simulator` — construction
signatures stay unchanged and a primitive used standalone (outside any
simulator) simply keeps private metrics.

Volatile metrics (skip accounting, wall-clock profiles) are flagged so the
differential fast-forward-vs-naive harness can compare ``dump(stable_only=
True)`` bit-for-bit.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

SEP = "/"

#: Default histogram buckets: powers of two up to 64Ki, good for cycle counts.
DEFAULT_BUCKETS = tuple(1 << i for i in range(17))

#: Default percentiles reported by histogram dumps.  p999 rides along because
#: the serving-SLO reports (ROADMAP item 3) gate on tail latency.
DEFAULT_PERCENTILES = (0.5, 0.9, 0.99, 0.999)


def _percentile_key(q: float) -> str:
    """``0.999 -> "p999"``, ``0.5 -> "p50"`` — stable dump/report keys."""
    return "p" + f"{q * 100:g}".replace(".", "")


class Counter:
    """A monotonically increasing event counter that compares like an int."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n

    # Number-like behaviour so existing call sites (``ctr == 4``,
    # ``ctr += 1``, ``ctr / cycles``) keep working after the field swap.
    def __iadd__(self, n: int) -> "Counter":
        self.value += n
        return self

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (Counter, Gauge)):
            return self.value == other.value
        return self.value == other

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __lt__(self, other) -> bool:
        return self.value < _num(other)

    def __le__(self, other) -> bool:
        return self.value <= _num(other)

    def __gt__(self, other) -> bool:
        return self.value > _num(other)

    def __ge__(self, other) -> bool:
        return self.value >= _num(other)

    def __hash__(self) -> int:
        return hash(self.value)

    def __int__(self) -> int:
        return int(self.value)

    def __float__(self) -> float:
        return float(self.value)

    def __bool__(self) -> bool:
        return bool(self.value)

    def __add__(self, other):
        return self.value + _num(other)

    __radd__ = __add__

    def __sub__(self, other):
        return self.value - _num(other)

    def __rsub__(self, other):
        return _num(other) - self.value

    def __mul__(self, other):
        return self.value * _num(other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self.value / _num(other)

    def __rtruediv__(self, other):
        return _num(other) / self.value

    def __index__(self) -> int:
        return int(self.value)

    def __repr__(self) -> str:
        return f"Counter({self.value})"

    def dump_value(self):
        return self.value


def _num(x):
    return x.value if isinstance(x, (Counter, Gauge)) else x


class Gauge(Counter):
    """A point-in-time value; same number-like surface as :class:`Counter`."""

    __slots__ = ()

    def set(self, value) -> None:
        self.value = value

    def add(self, n) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow bin.

    ``percentiles`` selects which quantiles the dump reports (as ``p50``,
    ``p999``, ... keys).  Quantiles are estimated by linear interpolation
    inside the bucket holding the target rank — exact at bucket bounds and
    deterministic, which is all the SLO reports need.
    """

    __slots__ = ("buckets", "counts", "count", "total", "percentiles")

    def __init__(
        self,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        percentiles: Sequence[float] = DEFAULT_PERCENTILES,
    ) -> None:
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        for q in percentiles:
            if not 0.0 < q < 1.0:
                raise ValueError(f"percentile {q} outside (0, 1)")
        self.percentiles = tuple(percentiles)
        self.counts = [0] * (len(self.buckets) + 1)  # last bin = overflow
        self.count = 0
        self.total = 0

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (0 on an empty histogram).

        Overflow-bin ranks return the largest bucket bound: the histogram
        cannot see past its last bound, and a flat answer there is more
        honest than extrapolation.
        """
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, bound in enumerate(self.buckets):
            c = self.counts[i]
            if c and seen + c >= rank:
                lo = self.buckets[i - 1] if i else 0
                return lo + (bound - lo) * (rank - seen) / c
            seen += c
        return float(self.buckets[-1])

    def dump_value(self):
        out = {
            "count": self.count,
            "total": self.total,
            "buckets": {str(b): c for b, c in zip(self.buckets, self.counts)},
            "overflow": self.counts[-1],
        }
        for q in self.percentiles:
            out[_percentile_key(q)] = self.quantile(q)
        return out

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, mean={self.mean:.2f})"


class BoundMetric:
    """A lazy view over an existing value: read through ``fn`` at dump time.

    This is the zero-overhead binding for hot-path fields that must stay
    plain Python ints (channel statistics): the owning object mutates its
    field directly and the registry reads it only when asked.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], Any]) -> None:
        self.fn = fn

    @property
    def value(self):
        return self.fn()

    def dump_value(self):
        return self.fn()

    def __repr__(self) -> str:
        return f"BoundMetric({self.fn()!r})"


class MetricRegistry:
    """Hierarchically namespaced collection of metrics (``a/b/c`` paths)."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._volatile: Dict[str, bool] = {}

    # ------------------------------------------------------------- creation
    def scope(self, prefix: str) -> "MetricScope":
        return MetricScope(self, prefix)

    def counter(self, name: str) -> Counter:
        return self.attach(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self.attach(name, Gauge())

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        percentiles: Sequence[float] = DEFAULT_PERCENTILES,
    ) -> Histogram:
        return self.attach(name, Histogram(buckets, percentiles))

    def attach(self, name: str, metric, volatile: bool = False):
        """Adopt an existing metric object under ``name``.

        Duplicate names get a deterministic ``#2``, ``#3`` ... suffix: two
        anonymous components may legitimately share a name, and observability
        must never abort a simulation.
        """
        key = name
        n = 2
        while key in self._metrics:
            key = f"{name}#{n}"
            n += 1
        self._metrics[key] = metric
        self._volatile[key] = volatile
        return metric

    def bind(self, name: str, fn: Callable[[], Any], volatile: bool = False) -> BoundMetric:
        return self.attach(name, BoundMetric(fn), volatile=volatile)

    # --------------------------------------------------------------- access
    def get(self, name: str):
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self, prefix: Optional[str] = None) -> List[str]:
        if prefix is None:
            return list(self._metrics)
        pfx = prefix.rstrip(SEP) + SEP
        return [n for n in self._metrics if n.startswith(pfx) or n == prefix]

    def value(self, name: str, default=0):
        m = self._metrics.get(name)
        return default if m is None else m.dump_value()

    # ----------------------------------------------------------------- dump
    def dump(
        self, prefix: Optional[str] = None, stable_only: bool = False
    ) -> Dict[str, Any]:
        """Flat ``{path: value}`` snapshot, JSON-serialisable.

        ``stable_only`` drops volatile metrics (skip accounting, wall-clock
        data), leaving exactly the set the differential fast-forward harness
        proves bit-identical between naive and event-skipping runs.
        """
        out: Dict[str, Any] = {}
        for name in self.names(prefix):
            if stable_only and self._volatile.get(name):
                continue
            out[name] = self._metrics[name].dump_value()
        return out

    def to_json(self, prefix: Optional[str] = None, indent: int = 2) -> str:
        return json.dumps(self.dump(prefix), indent=indent, sort_keys=True)

    def render_report(self, prefix: Optional[str] = None) -> str:
        """Human-readable flat metrics report, one ``path = value`` per line."""
        lines = [f"{'metric':<58} value"]
        for name, value in sorted(self.dump(prefix).items()):
            if isinstance(value, dict):  # histogram
                shown = f"count={value['count']} total={value['total']}"
                tails = " ".join(
                    f"{k}={value[k]:.0f}"
                    for k in sorted(value, key=len)
                    if k.startswith("p") and k[1:].isdigit()
                )
                if tails:
                    shown += f" {tails}"
            elif isinstance(value, float):
                shown = f"{value:.4f}"
            else:
                shown = str(value)
            lines.append(f"{name:<58} {shown}")
        return "\n".join(lines)


class MetricScope:
    """A registry view that prefixes every name with a namespace path."""

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: MetricRegistry, prefix: str) -> None:
        self.registry = registry
        self.prefix = prefix.strip(SEP)

    def _name(self, name: str) -> str:
        return f"{self.prefix}{SEP}{name}" if self.prefix else name

    def scope(self, prefix: str) -> "MetricScope":
        return MetricScope(self.registry, self._name(prefix))

    def counter(self, name: str) -> Counter:
        return self.registry.counter(self._name(name))

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(self._name(name))

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        percentiles: Sequence[float] = DEFAULT_PERCENTILES,
    ) -> Histogram:
        return self.registry.histogram(self._name(name), buckets, percentiles)

    def attach(self, name: str, metric, volatile: bool = False):
        return self.registry.attach(self._name(name), metric, volatile=volatile)

    def bind(self, name: str, fn: Callable[[], Any], volatile: bool = False) -> BoundMetric:
        return self.registry.bind(self._name(name), fn, volatile=volatile)


def attach_all(scope: MetricScope, metrics: Iterable) -> None:
    """Attach ``(name, metric)`` pairs under ``scope`` in one call."""
    for name, metric in metrics:
        scope.attach(name, metric)
