"""End-to-end host-command span tracking.

A host command's lifetime crosses four models: the :class:`RuntimeServer`
(enqueue, lock acquisition, MMIO word dispatch), the command router/adapter
(delivery to the core), the core itself (execution), and the memory system
(AXI bursts issued on the command's behalf).  None of those models carries a
command ID on the wire — the RoCC encoding has no spare bits and we refuse to
widen it just for tracing — so the tracker reconstructs identity from the
in-order delivery guarantees the fabric already provides:

* per ``(system_id, core_id)`` key, commands are dispatched, delivered, and
  answered in FIFO order (the router's delay lines and the adapter's chunk
  reassembly preserve order per destination);
* therefore matching "the next delivery for key K" with "the oldest
  dispatched-but-undelivered command for key K" is exact, and likewise for
  responses.

The tracker keeps one FIFO per key between each pair of lifecycle stages and
emits :class:`~repro.sim.trace.Span` records through the shared tracer:

``cmd:<label>``  (root, runtime-server track)
  └─ ``dispatch``  lock acquisition + MMIO word serialisation
  └─ ``execute``   delivery at the core adapter -> response packed
       (AXI bursts issued while a command executes are parented to the root
       span via :meth:`current_command`)

Everything degrades gracefully: with a disabled tracer every method is a
cheap no-op returning span id 0.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.sim.trace import Tracer

Key = Tuple[int, int]  # (system_id, core_id)


class CommandSpanTracker:
    """Assigns span IDs to host commands and stitches their lifecycle."""

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self._tracks: Dict[Key, str] = {}
        # sid queues between lifecycle stages, one FIFO per core key.
        self._awaiting_delivery: Dict[Key, Deque[int]] = {}
        self._executing: Dict[Key, Deque[int]] = {}
        # root sid -> currently open child span.
        self._dispatch_child: Dict[int, int] = {}
        self._exec_child: Dict[int, int] = {}
        self.commands_tracked = 0

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    # ------------------------------------------------------------- topology
    def set_track(self, key: Key, track: str) -> None:
        """Name the display track for a core (``"Memcpy/core0"``)."""
        self._tracks[key] = track

    def track_for(self, key: Key) -> str:
        return self._tracks.get(key, f"sys{key[0]}/core{key[1]}")

    # ------------------------------------------------------------ lifecycle
    def command_submitted(
        self, cycle: int, key: Key, client: int = 0, label: str = "cmd",
        tenant: str = "",
    ) -> int:
        """Host enqueued a command at the runtime server; opens the root span.

        ``tenant`` (when the serving layer set one) is recorded in the span
        args only when non-empty, so untagged traces keep their exact
        pre-serving shape.
        """
        if not self.enabled:
            return 0
        self.commands_tracked += 1
        args = {"system_id": key[0], "core_id": key[1], "client": client}
        if tenant:
            args["tenant"] = tenant
        return self.tracer.begin_span(
            cycle,
            self.track_for(key),
            f"cmd:{label}",
            **args,
        )

    def dispatch_begin(self, cycle: int, span_id: int) -> None:
        """Server won the lock and starts serialising MMIO words."""
        if not span_id:
            return
        self._dispatch_child[span_id] = self.tracer.begin_span(
            cycle, self.track_for_span(span_id), "dispatch", parent=span_id
        )

    def dispatch_end(self, cycle: int, span_id: int, key: Key) -> None:
        """Last MMIO word pushed; the command is in flight toward the core."""
        if not span_id:
            return
        child = self._dispatch_child.pop(span_id, 0)
        if child:
            self.tracer.end_span(child, cycle)
        self._awaiting_delivery.setdefault(key, deque()).append(span_id)

    def delivered(self, cycle: int, key: Key) -> Optional[int]:
        """The core adapter handed the decoded command to the core."""
        pending = self._awaiting_delivery.get(key)
        if not pending:
            return None
        span_id = pending.popleft()
        self._exec_child[span_id] = self.tracer.begin_span(
            cycle, self.track_for(key), "execute", parent=span_id
        )
        self._executing.setdefault(key, deque()).append(span_id)
        return span_id

    def response_sent(self, cycle: int, key: Key) -> Optional[int]:
        """The core's response was packed; execution is over."""
        executing = self._executing.get(key)
        if not executing:
            return None
        span_id = executing.popleft()
        child = self._exec_child.pop(span_id, 0)
        if child:
            self.tracer.end_span(child, cycle)
        return span_id

    def command_completed(self, cycle: int, span_id: int) -> None:
        """The runtime server polled the response; closes the root span."""
        if span_id:
            self.tracer.end_span(span_id, cycle)

    def current_command(self, key: Key) -> Optional[int]:
        """Root span of the oldest command currently executing on ``key``.

        Memory ports use this to attribute AXI bursts: with in-order
        per-core execution the oldest executing command is the one driving
        the port.
        """
        executing = self._executing.get(key)
        return executing[0] if executing else None

    # ------------------------------------------------------------ AXI bursts
    def axi_begin(
        self,
        cycle: int,
        key: Optional[Key],
        owner: str,
        kind: str,
        addr: int,
        beats: int,
    ) -> int:
        """Open an AXI burst span parented to the executing command (if any)."""
        if not self.enabled:
            return 0
        parent = self.current_command(key) if key is not None else None
        return self.tracer.begin_span(
            cycle,
            owner.replace(".", "/"),
            f"axi:{kind}",
            parent=parent,
            addr=addr,
            beats=beats,
        )

    def axi_end(self, span_id: int, cycle: int, **args: Any) -> None:
        if span_id:
            self.tracer.end_span(span_id, cycle, **args)

    # -------------------------------------------------------------- helpers
    def track_for_span(self, span_id: int) -> str:
        span = self.tracer._open_spans.get(span_id)
        return span.track if span is not None else "runtime"

    def register_metrics(self, scope) -> None:
        scope.bind("commands_tracked", lambda: self.commands_tracked)
